"""Long-lived query sessions: one theory, persistent caches, amortized work.

A plain :class:`~repro.core.kmt.KMT` builds a fresh ``Normalizer`` per query
and re-derives every automaton from scratch; an :class:`EngineSession` wraps
the same facade but keeps everything warm between queries:

* one persistent ``Normalizer`` whose ``pb_star`` / primitive-pushback memo
  tables survive across queries (stats and step budget reset per query);
* an :class:`~repro.engine.cache.EngineCaches` bundle threaded into the
  ``EquivalenceChecker`` (equivalence verdicts, satisfiability oracles) and
  installed into :mod:`repro.core.automata` (shared derivative memo);
* a fingerprint-keyed normal-form cache in front of normalization itself, so
  repeated and overlapping queries — ``partition``, Hoare-triple chains, the
  batch front end — never re-normalize the same term twice.

Sessions are *not* thread-safe; the batch layer gives each worker exclusive
access via :attr:`EngineSession.lock`.
"""

from __future__ import annotations

import threading

from repro.core import automata
from repro.core import terms as T
from repro.core.kmt import KMT
from repro.core.pushback import DEFAULT_BUDGET, Normalizer
from repro.engine import intern
from repro.engine.cache import DERIVATIVE_CACHE, EngineCaches
from repro.utils.trace import current_trace

_MISS = object()


class EngineSession:
    """A persistent, cache-backed query engine for one client theory."""

    def __init__(self, theory, budget=DEFAULT_BUDGET, prune_unsat_cells=True, caches=None,
                 cell_search="signature", walk_kernel="flat"):
        intern.install()
        self.caches = caches if caches is not None else EngineCaches()
        # The automata memo is a process-wide slot.  Only the *shared* table is
        # ever auto-installed: a session built with a custom ``caches=`` bundle
        # must not publish its private derivative table process-wide (it would
        # silently redirect every other session's derivative caching, and pool
        # stats would report the wrong table).  Custom bundles that really want
        # a global table can call ``automata.set_derivative_cache`` themselves.
        if self.caches.deriv is DERIVATIVE_CACHE and automata.get_derivative_cache() is None:
            automata.set_derivative_cache(DERIVATIVE_CACHE)
        self.kmt = KMT(
            theory, budget=budget, prune_unsat_cells=prune_unsat_cells, caches=self.caches,
            cell_search=cell_search, walk_kernel=walk_kernel,
        )
        self.theory = theory
        self.budget = budget
        self.lock = threading.Lock()
        self._normalizer = Normalizer(theory, budget=budget)
        self.queries = 0
        self._cumulative_steps = 0

    def __repr__(self):
        return f"EngineSession({self.theory.describe()}, queries={self.queries})"

    # ------------------------------------------------------------------
    # parsing passthrough
    # ------------------------------------------------------------------
    def parse(self, text):
        return self.kmt.parse(text)

    def parse_pred(self, text):
        return self.kmt.parse_pred(text)

    def _coerce_term(self, p):
        return self.kmt._coerce_term(p)

    def _coerce_pred(self, pred):
        if isinstance(pred, str):
            return self.parse_pred(pred)
        if not isinstance(pred, T.Pred):
            raise TypeError(f"expected a Pred or source string, got {pred!r}")
        return pred

    # ------------------------------------------------------------------
    # cached normalization
    # ------------------------------------------------------------------
    def normalize(self, term, cancel=None):
        """Normalize a term, reusing the session's normal-form cache.

        ``cancel`` (here and on every decision entry point) is an optional
        cooperative-cancellation callable threaded down into normalization,
        the signature/cell search and the automata comparison; it aborts the
        query by raising — typically
        :class:`~repro.utils.errors.DeadlineExceeded`, which the query server
        maps to a ``deadline_exceeded`` error response.  Cancellation is safe
        mid-query: every memo table is only written on completion.
        """
        self.queries += 1
        return self._normalize_cached(term, cancel=cancel)

    def _normalize_cached(self, term, cancel=None):
        term = self._coerce_term(term)
        key = self.caches.term_key(term)
        cached = self.caches.norm.get(key, _MISS)
        if cached is not _MISS:
            return cached
        self._normalizer.reset_stats()
        self._normalizer.cancel = cancel
        trace = current_trace()
        try:
            if trace is None:
                nf = self._normalizer.normalize(term)
            else:
                # Timed here (around the whole pushback normalization) rather
                # than inside the Normalizer: one span per cache miss, zero
                # cost on the per-step hot loop.
                with trace.span("normalize"):
                    nf = self._normalizer.normalize(term)
        finally:
            self._normalizer.cancel = None
            self._cumulative_steps += self._normalizer.stats.steps
        self.caches.norm.put(key, nf)
        return nf

    # ------------------------------------------------------------------
    # decision procedures (all routed through the cached normalizer)
    # ------------------------------------------------------------------
    # ``queries`` counts public entry points, once each — internal
    # normalization sub-calls do not inflate it.
    def check_equivalent(self, p, q, cancel=None):
        """Decide ``p == q`` with full result; both normal forms are cached."""
        self.queries += 1
        x = self._normalize_cached(p, cancel=cancel)
        y = self._normalize_cached(q, cancel=cancel)
        return self.kmt.checker.check_equivalent_nf(x, y, cancel=cancel)

    def equivalent(self, p, q):
        return self.check_equivalent(p, q).equivalent

    def less_or_equal(self, p, q, cancel=None):
        """``p <= q`` i.e. ``p + q == q``."""
        p, q = self._coerce_term(p), self._coerce_term(q)
        return self.check_equivalent(T.tplus(p, q), q, cancel=cancel).equivalent

    def check_inclusion(self, p, q, cancel=None):
        """Decide ``p <= q`` by per-cell compiled-automaton containment.

        Unlike :meth:`less_or_equal` this never normalizes ``p + q`` — both
        operand normal forms come from (and land in) the session's norm
        cache, the per-signature containments go through the shared ``sig``
        verdict memo, and the compiled automata through the ``aut`` LRU, so a
        warm session answers inclusion queries over known sums without
        re-deriving anything.
        """
        self.queries += 1
        x = self._normalize_cached(p, cancel=cancel)
        y = self._normalize_cached(q, cancel=cancel)
        return self.kmt.checker.check_inclusion_nf(x, y, cancel=cancel)

    def includes(self, p, q):
        return self.check_inclusion(p, q).includes

    def member(self, term, word, cancel=None):
        """Word membership: is ``word`` a possible action sequence of ``term``?

        ``word`` follows :meth:`repro.core.kmt.KMT.member`'s element forms
        (raw primitive actions, ``TPrim`` terms, or source strings).  Decided
        on the cached compiled automata of the term's normal form.
        """
        self.queries += 1
        pis = self.kmt._coerce_word(word)
        nf = self._normalize_cached(term, cancel=cancel)
        return self.kmt.checker.member_nf(nf, pis, cancel=cancel)

    def member_many(self, term, words, cancel=None):
        """Batched membership: many words against one term, normalized once.

        Returns a list of bools aligned with ``words``; each summand's cached
        automaton judges every still-undecided word in a single batched
        kernel call (:meth:`EquivalenceChecker.member_nf_many`).
        """
        self.queries += 1
        pis = [self.kmt._coerce_word(word) for word in words]
        nf = self._normalize_cached(term, cancel=cancel)
        return self.kmt.checker.member_nf_many(nf, pis, cancel=cancel)

    def is_empty(self, p, cancel=None):
        self.queries += 1
        return self.kmt.checker.is_empty_nf(self._normalize_cached(p, cancel=cancel),
                                            cancel=cancel)

    # ------------------------------------------------------------------
    # program analyses (see repro.analysis.checks)
    # ------------------------------------------------------------------
    # Program source text is parsed+compiled through the ``prog`` cache; the
    # resulting terms flow through the same cached pipeline as every other
    # query, so an edit-recheck loop re-verifying a mutated program only pays
    # for the normal forms that actually changed.
    def verify(self, pre, program, post, cancel=None):
        """Decide the Hoare triple ``{pre} program {post}`` over While source."""
        from repro.analysis import checks

        return checks.verify(self, pre, program, post, cancel=cancel)

    def prog_equiv(self, left, right, cancel=None):
        """Decide equivalence of two While programs (source text)."""
        from repro.analysis import checks

        return checks.prog_equiv(self, left, right, cancel=cancel)

    def dead_code(self, program, cancel=None):
        """Per-statement unreachability report for a While program."""
        from repro.analysis import checks

        self.queries += 1
        return checks.dead_code(self, program, cancel=cancel)

    def _is_empty_nf_cached(self, term, cancel=None):
        """Emptiness without bumping the public query counter (internal)."""
        return self.kmt.checker.is_empty_nf(
            self._normalize_cached(term, cancel=cancel), cancel=cancel)

    def satisfiable(self, pred):
        """Satisfiability of a predicate, memoized by fingerprint."""
        self.queries += 1
        pred = self._coerce_pred(pred)
        return self.kmt.checker._satisfiable_pred(pred)

    def partition(self, ps):
        """Equivalence classes over ``ps`` (indices), sharing all caches."""
        self.queries += 1
        nfs = [self._normalize_cached(p) for p in ps]
        return self.kmt.checker.partition_nfs(nfs)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def stats(self, include_shared=True):
        """Cache hit/miss tables plus session-level counters.

        ``include_shared=False`` omits the process-wide derivative cache (see
        :meth:`repro.engine.cache.EngineCaches.stats`).
        """
        out = self.caches.stats(include_shared=include_shared)
        out["session"] = {
            "theory": self.theory.describe(),
            "queries": self.queries,
            "normalization_steps": self._cumulative_steps,
            # Raw derivative states explored by automaton compilation; aut
            # cache hits compile nothing, so a warm session's counter stalls.
            "states_compiled": self.kmt.checker.states_compiled,
            # Live flat-table bytes of this session's compiled automata
            # (tracked by the arena pool; falls as the aut LRU evicts).
            "aut_bytes": self.caches.arenas.aut_bytes,
            "pb_star_memo": len(self._normalizer._pb_star_cache),
            "pb_prim_memo": len(self._normalizer._pb_prim_cache),
        }
        return out

    def clear_caches(self):
        """Drop all cached results (the session stays usable)."""
        self.caches.clear()
        self._normalizer = Normalizer(self.theory, budget=self.budget)

    # ------------------------------------------------------------------
    # snapshot save / load (see repro.engine.persist)
    # ------------------------------------------------------------------
    def export_state(self):
        """This session's persistable cache state, stamped with its theory.

        The returned dict is JSON-safe and feeds
        :meth:`import_state` of a session over the *same* theory — in this
        process, a respawned worker, or a future restart.
        """
        from repro.engine import persist

        return persist.export_session_state(self)

    def import_state(self, state):
        """Warm this session from an exported state; returns import counts.

        Raises :class:`~repro.utils.errors.SnapshotError` (and touches no
        cache) if the payload's theory stamp or any entry is invalid — the
        decode is staged completely before anything is installed.
        """
        from repro.engine import persist

        return persist.import_session_state(self, state)
