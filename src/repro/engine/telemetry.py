"""Telemetry for the KMT engine: tracing, metrics, structured logging.

Three layers, one module:

1. **Per-request tracing** — the span recorder itself lives in
   :mod:`repro.utils.trace` (so :mod:`repro.core` can be instrumented without
   importing the engine package); this module re-exports it.  A request
   carrying ``"trace": true`` gets a ``trace`` block in its response with the
   per-phase self-time breakdown (``normalize`` / ``signatures`` / ``compile``
   / ``compare`` / ``product_walk`` / ``minimize`` / ``kernel``), the
   individual spans, per-table cache hit/miss deltas, and — from the query
   server — ``queue_ms`` and ``total_ms`` stamped by the scheduler.  The
   ``kernel`` phase covers the batched flat-table walks of
   :mod:`repro.core.kernels`, which also tally free-form ``counters``
   (``kernel_fastpath_hits``, ``kernel_levels``, ``kernel_pairs``,
   ``kernel_batch_words``, ``kernel_walk_fallbacks``) in the trace block.  See
   :func:`repro.engine.batch.run_query` for activation and
   :class:`repro.engine.server.QueryServer` for the scheduler half.

2. **Aggregated metrics** — :class:`MetricsRegistry`: thread-safe counters,
   gauges and fixed-bucket log2 latency histograms keyed by arbitrary label
   sets (in practice ``theory`` × request ``op``).  Registries are plain
   data once snapshotted: worker processes piggyback their snapshots over the
   existing stats pipe and the parent folds them with :func:`merge_metrics`,
   exactly as :func:`repro.engine.server.merge_pool_stats` folds cache
   tables.  :func:`render_prometheus` turns a snapshot into Prometheus text
   exposition format (version 0.0.4); :class:`MetricsExporter` serves it over
   HTTP for ``kmt serve --metrics HOST:PORT``.

3. **Structured logging** — JSON-lines event log on the ``kmt.*`` logger
   hierarchy (:class:`JsonLinesFormatter`, :func:`configure_logging`,
   :func:`log_event`).  Silent by default: a ``NullHandler`` is installed on
   the ``"kmt"`` root so nothing is emitted until a CLI flag (or an embedding
   application) configures a handler.  The query server uses
   :func:`log_event` for lifecycle events (start/stop, worker crash/respawn)
   and the slow-query log (``--slow-query-ms``).
"""

from __future__ import annotations

import itertools
import json
import logging
import os
import threading
import time
from bisect import bisect_left
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.utils.trace import (  # noqa: F401 — the tracing half of this subsystem
    DEFAULT_MAX_SPANS,
    Trace,
    activate,
    current_trace,
    deactivate,
)

__all__ = [
    "Trace", "current_trace", "activate", "deactivate", "DEFAULT_MAX_SPANS",
    "HISTOGRAM_BUCKETS_MS", "MetricsRegistry", "empty_snapshot", "merge_metrics",
    "render_prometheus", "MetricsExporter",
    "JsonLinesFormatter", "configure_logging", "log_event", "next_request_id",
]

#: Histogram bucket upper bounds (milliseconds): log2 ladder from 0.25 ms to
#: 8192 ms, plus an implicit +Inf overflow bucket.  Fixed — every registry in
#: every worker uses the same ladder, so merging is element-wise addition.
HISTOGRAM_BUCKETS_MS = tuple(float(2 ** exponent) for exponent in range(-2, 14))


def _label_key(labels):
    """Canonicalize a label set (dict or pair iterable) to a sorted tuple."""
    if isinstance(labels, dict):
        return tuple(sorted(labels.items()))
    return tuple(sorted(labels))


class _Histogram:
    __slots__ = ("counts", "total", "sum_ms")

    def __init__(self):
        self.counts = [0] * (len(HISTOGRAM_BUCKETS_MS) + 1)
        self.total = 0
        self.sum_ms = 0.0

    def observe(self, value_ms):
        self.counts[bisect_left(HISTOGRAM_BUCKETS_MS, value_ms)] += 1
        self.total += 1
        self.sum_ms += value_ms


class MetricsRegistry:
    """Thread-safe counters, gauges and log2 latency histograms.

    Everything is keyed by ``(metric name, label set)``; label sets are small
    dicts (or pair tuples) like ``{"theory": "incnat", "op": "equiv"}``.
    Metrics spring into existence on first touch — there is no separate
    declaration step, so instrumentation points stay one-liners.
    :meth:`snapshot` returns a plain JSON-able dict (the wire/merge/render
    currency); the registry itself never crosses a process boundary.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters = {}    # name -> {label_key: int}
        self._gauges = {}      # name -> {label_key: number}
        self._histograms = {}  # name -> {label_key: _Histogram}

    def inc(self, name, labels=(), value=1):
        key = _label_key(labels)
        with self._lock:
            table = self._counters.setdefault(name, {})
            table[key] = table.get(key, 0) + value

    def set_gauge(self, name, value, labels=()):
        with self._lock:
            self._gauges.setdefault(name, {})[_label_key(labels)] = value

    def observe(self, name, value_ms, labels=()):
        key = _label_key(labels)
        with self._lock:
            table = self._histograms.setdefault(name, {})
            histogram = table.get(key)
            if histogram is None:
                histogram = table[key] = _Histogram()
            histogram.observe(value_ms)

    def snapshot(self):
        """A JSON-able copy of every metric (see :func:`empty_snapshot`)."""
        with self._lock:
            counters = {
                name: [{"labels": dict(key), "value": value}
                       for key, value in sorted(table.items())]
                for name, table in sorted(self._counters.items())
            }
            gauges = {
                name: [{"labels": dict(key), "value": value}
                       for key, value in sorted(table.items())]
                for name, table in sorted(self._gauges.items())
            }
            histograms = {
                name: [
                    {
                        "labels": dict(key),
                        "buckets_ms": list(HISTOGRAM_BUCKETS_MS),
                        "counts": list(histogram.counts),
                        "count": histogram.total,
                        "sum_ms": histogram.sum_ms,
                    }
                    for key, histogram in sorted(table.items())
                ]
                for name, table in sorted(self._histograms.items())
            }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}


def empty_snapshot():
    """The zero element of :func:`merge_metrics`."""
    return {"counters": {}, "gauges": {}, "histograms": {}}


def merge_metrics(snapshots):
    """Fold registry snapshots (e.g. one per worker process) into one.

    Counters and histogram bucket counts add element-wise; gauges add too
    (the per-worker gauges in this codebase are all extensive quantities —
    live sessions, resident cache entries — where summing is the meaningful
    fold).  Histograms must share the bucket ladder; mixed ladders raise
    ``ValueError`` rather than merging nonsense.
    """
    counters = {}
    gauges = {}
    histograms = {}

    def _fold_scalars(into, table_name, entries):
        table = into.setdefault(table_name, {})
        for entry in entries:
            key = _label_key(entry["labels"])
            table[key] = table.get(key, 0) + entry["value"]

    for snapshot in snapshots:
        for name, entries in snapshot.get("counters", {}).items():
            _fold_scalars(counters, name, entries)
        for name, entries in snapshot.get("gauges", {}).items():
            _fold_scalars(gauges, name, entries)
        for name, entries in snapshot.get("histograms", {}).items():
            table = histograms.setdefault(name, {})
            for entry in entries:
                key = _label_key(entry["labels"])
                merged = table.get(key)
                if merged is None:
                    table[key] = {
                        "labels": dict(key),
                        "buckets_ms": list(entry["buckets_ms"]),
                        "counts": list(entry["counts"]),
                        "count": entry["count"],
                        "sum_ms": entry["sum_ms"],
                    }
                    continue
                if merged["buckets_ms"] != list(entry["buckets_ms"]):
                    raise ValueError(
                        f"cannot merge histogram {name!r}: bucket ladders differ")
                merged["counts"] = [a + b for a, b in zip(merged["counts"], entry["counts"])]
                merged["count"] += entry["count"]
                merged["sum_ms"] += entry["sum_ms"]

    def _render_scalars(table):
        return {
            name: [{"labels": dict(key), "value": value}
                   for key, value in sorted(entries.items())]
            for name, entries in sorted(table.items())
        }

    return {
        "counters": _render_scalars(counters),
        "gauges": _render_scalars(gauges),
        "histograms": {
            name: [entries[key] for key in sorted(entries)]
            for name, entries in sorted(histograms.items())
        },
    }


# ---------------------------------------------------------------------------
# Prometheus text exposition (format version 0.0.4)
# ---------------------------------------------------------------------------

_HELP = {
    "requests_total": "Requests completed by the scheduler, by theory/op/outcome.",
    "rejected_total": "Requests refused before execution (backpressure, shutdown, invalid).",
    "request_latency_ms": "End-to-end request latency (queue wait + execution).",
    "queue_latency_ms": "Time from submission to worker dispatch.",
    "exec_latency_ms": "Time from worker dispatch to response.",
    "worker_requests_total": "Requests executed inside worker processes.",
    "worker_exec_latency_ms": "In-worker execution latency (process backend).",
    "cache_hits_total": "Cache table hits, by theory and table.",
    "cache_misses_total": "Cache table misses, by theory and table.",
    "cache_evictions_total": "Cache table evictions, by theory and table.",
    "uptime_seconds": "Seconds since the server started.",
    "queue_depth": "Requests queued, not yet picked up by a worker.",
    "queue_peak": "High-water mark of the queue depth.",
    "queue_limit": "Bounded-intake capacity.",
    "in_flight": "Requests queued or executing.",
    "workers": "Scheduler worker count.",
    "stripes": "Session stripes per theory.",
    "oracle_calls_total": "Out-of-process theory-oracle calls (test oracle wrapper).",
    "router_requests_total": "Requests forwarded by the cluster router, by backend/outcome.",
    "router_rejected_total": "Requests the router refused at admission (rate limit, queue full, shutdown).",
    "router_retries_total": "Requests re-dispatched to another replica after a backend failure.",
    "router_ejections_total": "Backends ejected from the hash ring after a failed probe or broken connection.",
    "router_rejoins_total": "Backends readmitted to the hash ring after a successful probe.",
    "router_backend_latency_ms": "Router-observed per-backend round-trip latency (send to response).",
    "router_backends_up": "Backends currently in the hash ring.",
    "router_backends_down": "Configured backends currently ejected.",
    "router_queue_depth": "Requests admitted by the router, not yet answered.",
}


# ---------------------------------------------------------------------------
# Process-global registry
# ---------------------------------------------------------------------------

_PROCESS_METRICS = MetricsRegistry()


def process_metrics():
    """This process's ambient :class:`MetricsRegistry`.

    For instrumentation points that have no handle on a server's registry —
    e.g. a theory wrapper constructed deep inside a worker process counting
    oracle calls.  The process backend merges this registry into each
    worker's piggybacked stats snapshot, so counters recorded here surface in
    the parent's ``metrics`` op like any other worker metric.  (Each worker
    process gets its own instance: workers are spawned, not forked.)
    """
    return _PROCESS_METRICS


def _escape_label(value):
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_text(labels, extra=None):
    items = dict(labels)
    if extra:
        items.update(extra)
    if not items:
        return ""
    body = ",".join(f'{name}="{_escape_label(value)}"'
                    for name, value in sorted(items.items()))
    return "{" + body + "}"


def _number_text(value):
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def render_prometheus(snapshot, prefix="kmt_"):
    """Render a metrics snapshot as Prometheus text exposition format.

    Histogram bucket counts are cumulative in the output (per the format),
    with the mandatory ``le="+Inf"`` bucket equal to ``_count``; internal
    snapshots keep them per-bucket for mergeability.
    """
    lines = []

    def _head(name, kind):
        full = prefix + name
        help_text = _HELP.get(name)
        if help_text:
            lines.append(f"# HELP {full} {help_text}")
        lines.append(f"# TYPE {full} {kind}")
        return full

    for name, entries in snapshot.get("counters", {}).items():
        full = _head(name, "counter")
        for entry in entries:
            lines.append(f"{full}{_label_text(entry['labels'])} "
                         f"{_number_text(entry['value'])}")
    for name, entries in snapshot.get("gauges", {}).items():
        full = _head(name, "gauge")
        for entry in entries:
            lines.append(f"{full}{_label_text(entry['labels'])} "
                         f"{_number_text(entry['value'])}")
    for name, entries in snapshot.get("histograms", {}).items():
        full = _head(name, "histogram")
        for entry in entries:
            labels = entry["labels"]
            cumulative = 0
            for bound, count in zip(entry["buckets_ms"], entry["counts"]):
                cumulative += count
                lines.append(f"{full}_bucket{_label_text(labels, {'le': f'{bound:g}'})} "
                             f"{cumulative}")
            lines.append(f"{full}_bucket{_label_text(labels, {'le': '+Inf'})} "
                         f"{entry['count']}")
            lines.append(f"{full}_sum{_label_text(labels)} {_number_text(entry['sum_ms'])}")
            lines.append(f"{full}_count{_label_text(labels)} {entry['count']}")
    return "\n".join(lines) + "\n"


class MetricsExporter:
    """Prometheus scrape endpoint: ``GET /metrics`` on a daemon HTTP thread.

    ``render`` is a zero-argument callable returning the exposition text
    (typically ``QueryServer.metrics_prometheus``), evaluated per scrape so
    the endpoint always reports live numbers.  ``port=0`` binds an ephemeral
    port, published on ``self.port`` after construction.
    """

    def __init__(self, render, host="127.0.0.1", port=0):
        exporter = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 — BaseHTTPRequestHandler API
                if self.path.split("?", 1)[0] not in ("/metrics", "/"):
                    self.send_error(404, "only /metrics is served here")
                    return
                try:
                    body = exporter._render().encode("utf-8")
                except Exception as error:  # noqa: BLE001 — a scrape must not kill the thread
                    self.send_error(500, f"metrics render failed: {error}")
                    return
                self.send_response(200)
                self.send_header("Content-Type",
                                 "text/plain; version=0.0.4; charset=utf-8")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format, *args):  # noqa: A002 — stdlib signature
                logging.getLogger("kmt.metrics").debug(
                    "scrape %s", format % args if args else format)

        self._render = render
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[0], self._httpd.server_address[1]
        self._thread = None

    def start(self):
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever, name="kmt-metrics-exporter",
                daemon=True)
            self._thread.start()
        return self

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.close()

    def close(self):
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()


# ---------------------------------------------------------------------------
# structured logging
# ---------------------------------------------------------------------------

#: Fields the formatter owns; event fields colliding with them are prefixed
#: rather than clobbering the envelope.
_ENVELOPE_FIELDS = frozenset({"ts", "level", "logger", "event"})


class JsonLinesFormatter(logging.Formatter):
    """One JSON object per log record (sorted keys, ISO-8601 UTC timestamps).

    Records emitted through :func:`log_event` carry their event name and
    structured fields; plain ``logger.info("...")`` calls from other code
    degrade gracefully (the formatted message becomes the ``event``).
    """

    def format(self, record):
        payload = {
            "ts": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(record.created))
                  + f".{int(record.msecs):03d}Z",
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": getattr(record, "kmt_event", None) or record.getMessage(),
        }
        fields = getattr(record, "kmt_fields", None)
        if fields:
            for name, value in fields.items():
                payload[f"field_{name}" if name in _ENVELOPE_FIELDS else name] = value
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


# Silent unless configured: library code must not spam stderr (the stdio
# protocol front ends share the process's streams with the protocol itself).
logging.getLogger("kmt").addHandler(logging.NullHandler())


def configure_logging(level="info", log_file=None, stream=None):
    """Point the ``kmt`` logger hierarchy at a JSON-lines handler.

    ``log_file`` wins over ``stream`` (default ``sys.stderr`` — never stdout,
    which carries protocol responses).  Reconfiguration replaces the previous
    handler, so repeated CLI invocations in one process do not double-log.
    Returns the configured root ``kmt`` logger.
    """
    import sys

    logger = logging.getLogger("kmt")
    numeric = getattr(logging, str(level).upper(), None)
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    if log_file is not None:
        handler = logging.FileHandler(log_file, encoding="utf-8")
    else:
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLinesFormatter())
    for old in list(logger.handlers):
        if not isinstance(old, logging.NullHandler):
            logger.removeHandler(old)
            old.close()
    logger.addHandler(handler)
    logger.setLevel(numeric)
    logger.propagate = False
    return logger


def log_event(logger, level, event, **fields):
    """Emit one structured event (a no-op when ``level`` is not enabled)."""
    if logger.isEnabledFor(level):
        logger.log(level, event, extra={"kmt_event": event, "kmt_fields": fields})


_REQUEST_COUNTER = itertools.count(1)


def next_request_id():
    """A process-unique request/trace id (``"<pid>-<counter>"``)."""
    return f"{os.getpid()}-{next(_REQUEST_COUNTER)}"
