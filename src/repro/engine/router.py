"""A consistent-hash router over ``kmt serve --socket`` backends.

The distributed tier on top of :mod:`repro.engine.server`: a standalone
process speaking the *same* JSONL protocol to clients, forwarding each query
to one of N backend servers over a pooled, reconnecting, multiplexed
connection per backend.

* **Sticky routing that preserves cache warmth** — the ring key is
  :func:`repro.engine.server.affinity_hash`, the *same* content hash every
  backend uses to pick a session stripe.  A query therefore lands on the
  same backend (and, inside it, the same warm stripe) whether it enters
  through the router or hits that backend's socket directly; repeats keep
  hitting warm caches across the extra hop.  :class:`ConsistentHashRing`
  places ``replicas`` virtual nodes per backend, so removing one backend
  remaps only the keys that backend owned (≈1/N of traffic) and leaves every
  other key's assignment — and cache affinity — untouched.

* **Health and failover** — a dead backend is detected in-band (EOF/reset on
  its connection, reusing the same broken-pipe signals as the process
  backend's ``worker_crashed`` machinery) or by periodic lightweight pings;
  it is ejected from the ring, its in-flight requests are retried on the
  next distinct replica for their key (successful retried responses carry a
  ``"retries": n`` field) or answered with a structured ``backend_down``
  error when no replica is left, and a recovered backend rejoins the ring
  after answering a probe.  No request id is ever lost or answered twice.

* **Admission control** — an optional per-client token bucket
  (``rate_limit`` queries/s with ``rate_burst`` headroom) refuses excess
  traffic with a ``rate_limited`` error before it costs a backend anything,
  and an integer ``"priority"`` request field (default 0, higher first)
  lets interactive queries overtake queued bulk traffic: each backend link
  drains its send queue highest-priority-first, while the backend's own
  bounded intake queue provides the backpressure that makes the ordering
  matter.  The router's global in-flight bound (``queue_limit``) turns into
  blocking intake exactly like a single server's.

* **Observability** — ``stats`` and ``metrics`` fan out to every live
  backend and merge (:func:`repro.engine.server.merge_pool_stats` /
  :func:`repro.engine.telemetry.merge_metrics`) so the cluster answers them
  with single-server response shapes, extended with a ``"router"`` block:
  ring membership, per-backend routed/retried/ejection counters and link
  states.  The router's own :class:`~repro.engine.telemetry.MetricsRegistry`
  tracks the same plus per-backend round-trip latency histograms.

The router reuses :class:`repro.engine.server.SocketServer` as its TCP front
end by implementing the same scheduler interface (``start`` /
``submit_line`` / ``wait_idle`` / ``shutdown``), so per-connection reader
threads, bounded writer queues, ordered mode and connection-scoped ``quit``
all behave exactly as on a single server.
"""

from __future__ import annotations

import bisect
import json
import logging
import threading
import time
import weakref
import zlib
from queue import PriorityQueue

from repro.engine.batch import (
    ERROR_BACKEND_DOWN,
    ERROR_INVALID,
    ERROR_QUEUE_FULL,
    ERROR_RATE_LIMITED,
    ERROR_SHUTDOWN,
    error_response,
    parse_request_line,
)
from repro.engine.client import SocketClient
from repro.engine.server import affinity_hash, merge_pool_stats
from repro.engine.telemetry import (
    MetricsRegistry,
    empty_snapshot,
    log_event,
    merge_metrics,
    render_prometheus,
)

_log = logging.getLogger("kmt.router")

__all__ = ["ConsistentHashRing", "TokenBucket", "Router", "parse_backends"]


# ---------------------------------------------------------------------------
# consistent-hash ring
# ---------------------------------------------------------------------------


class ConsistentHashRing:
    """Classic consistent hashing with virtual nodes.

    Each node owns ``replicas`` points on a 32-bit circle (crc32 of
    ``"{node}#{i}"`` — stable across processes, like the affinity hash
    itself); a key belongs to the first node point at or clockwise of the
    key's hash.  Adding a node steals only the arcs its points intercept;
    removing one hands its arcs to the next surviving points — every other
    key keeps its owner (the minimal-remapping property the tests pin down).

    Not thread-safe; the router guards membership changes with its own lock.
    """

    def __init__(self, nodes=(), replicas=64):
        if replicas < 1:
            raise ValueError(f"replicas must be at least 1, got {replicas}")
        self.replicas = replicas
        self._nodes = set()
        self._points = []  # sorted hash points
        self._owners = []  # owner node per point, aligned with _points
        for node in nodes:
            self.add(node)

    def __contains__(self, node):
        return node in self._nodes

    def __len__(self):
        return len(self._nodes)

    @property
    def nodes(self):
        return sorted(self._nodes)

    def _vnode_points(self, node):
        return [zlib.crc32(f"{node}#{index}".encode("utf-8"))
                for index in range(self.replicas)]

    def add(self, node):
        if node in self._nodes:
            return
        self._nodes.add(node)
        for point in self._vnode_points(node):
            # Ties on a point are broken by node name so membership changes
            # stay order-independent (same ring however you got there).
            index = bisect.bisect_left(list(zip(self._points, self._owners)),
                                       (point, node))
            self._points.insert(index, point)
            self._owners.insert(index, node)

    def remove(self, node):
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        keep = [(p, o) for p, o in zip(self._points, self._owners) if o != node]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    def lookup(self, key_hash):
        """The node owning ``key_hash``; ``None`` on an empty ring."""
        if not self._points:
            return None
        index = bisect.bisect_left(self._points, key_hash & 0xFFFFFFFF)
        return self._owners[index % len(self._points)]

    def preference(self, key_hash, limit=None):
        """Distinct nodes in clockwise order from ``key_hash``.

        The first entry is :meth:`lookup`'s answer; the rest are the failover
        order — the node a key remaps to when the ones before it leave.
        """
        if not self._points:
            return []
        wanted = len(self._nodes) if limit is None else min(limit, len(self._nodes))
        start = bisect.bisect_left(self._points, key_hash & 0xFFFFFFFF)
        nodes = []
        seen = set()
        for offset in range(len(self._points)):
            owner = self._owners[(start + offset) % len(self._points)]
            if owner not in seen:
                seen.add(owner)
                nodes.append(owner)
                if len(nodes) >= wanted:
                    break
        return nodes


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------


class TokenBucket:
    """Token bucket: ``rate`` tokens/second, at most ``burst`` banked."""

    def __init__(self, rate, burst):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last = time.monotonic()
        self._lock = threading.Lock()

    def allow(self, now=None):
        """Consume one token if available; ``False`` means rate-limited."""
        if now is None:
            now = time.monotonic()
        with self._lock:
            self._tokens = min(self.burst,
                               self._tokens + (now - self._last) * self.rate)
            self._last = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False


# ---------------------------------------------------------------------------
# routed work items
# ---------------------------------------------------------------------------

#: Probes and stats fan-outs jump every queue: they must work (and report)
#: exactly when the queues are jammed.
_CONTROL_PRIORITY = 1 << 30


class _RoutedQuery:
    """One client query in flight through the router."""

    __slots__ = ("record", "line", "internal_id", "client_id", "has_client_id",
                 "sink", "seq", "fallback_id", "theory", "key_hash", "priority",
                 "tried", "retries", "submitted", "dispatched", "done", "lock")

    is_control = False

    def __init__(self, record, internal_id, sink, seq, fallback_id, theory,
                 key_hash, priority):
        self.record = record
        self.internal_id = internal_id
        self.has_client_id = "id" in record
        self.client_id = record.get("id")
        self.sink = sink
        self.seq = seq
        self.fallback_id = fallback_id
        self.theory = theory
        self.key_hash = key_hash
        self.priority = priority
        self.tried = set()
        self.retries = 0
        self.submitted = time.monotonic()
        self.dispatched = self.submitted
        self.done = False
        self.lock = threading.Lock()
        # The forwarded line carries the router-internal id; the client's id
        # (or its absence) is restored on the way back.
        wire = dict(record)
        wire["id"] = internal_id
        wire.pop("priority", None)  # router-level concern; backends don't know it
        self.line = json.dumps(wire, sort_keys=True)

    def finish(self):
        """Claim completion; only the first caller gets ``True``.

        Failure handling and a late response can race on one entry; this is
        what guarantees every id is answered exactly once.
        """
        with self.lock:
            if self.done:
                return False
            self.done = True
            return True


class _ControlCall:
    """A router-internal request to one backend (probe or stats fan-out)."""

    __slots__ = ("record", "line", "internal_id", "priority", "done", "lock",
                 "event", "response", "dispatched")

    is_control = True

    def __init__(self, record, internal_id):
        self.record = record
        self.internal_id = internal_id
        self.priority = _CONTROL_PRIORITY
        self.done = False
        self.lock = threading.Lock()
        self.event = threading.Event()
        self.response = None
        self.dispatched = time.monotonic()
        wire = dict(record)
        wire["id"] = internal_id
        self.line = json.dumps(wire, sort_keys=True)

    def finish(self):
        with self.lock:
            if self.done:
                return False
            self.done = True
            return True


# ---------------------------------------------------------------------------
# backend link
# ---------------------------------------------------------------------------


class _BackendLink:
    """The router's connection to one backend: a priority send queue, one
    multiplexed socket, a reader thread matching responses to in-flight
    entries by router-internal id, and a probe thread that detects silent
    death and drives rejoin.

    Ownership discipline: an entry in ``pending`` is owned by whichever
    thread *pops* it — the reader (normal completion), :meth:`fail` (link
    death: every pending entry is re-dispatched or answered ``backend_down``)
    or the sender's error path.  Popping is atomic under ``_lock``, so an
    entry is completed exactly once even when a late response races a
    failure.
    """

    def __init__(self, router, host, port):
        self.router = router
        self.host = host
        self.port = port
        self.key = f"{host}:{port}"
        self.state = "down"
        self.generation = 0
        self.routed = 0
        self.ejections = 0
        self.last_error = None
        self.pending = {}
        self._client = None
        self._lock = threading.Lock()
        self._send_queue = PriorityQueue()
        self._queue_seq = 0
        self._stop = threading.Event()
        self._sender = None
        self._probe = None

    # -- lifecycle ----------------------------------------------------------

    def start(self):
        self._sender = threading.Thread(
            target=self._sender_loop, name=f"kmt-route-send-{self.key}", daemon=True)
        self._sender.start()
        self.try_revive()  # synchronous first dial: healthy backends serve at once
        self._probe = threading.Thread(
            target=self._probe_loop, name=f"kmt-route-probe-{self.key}", daemon=True)
        self._probe.start()

    def stop(self):
        self._stop.set()
        self._send_queue.put((-(_CONTROL_PRIORITY + 1), -1, None))
        with self._lock:
            client = self._client
            self._client = None
            self.state = "down"
            self.generation += 1
            pending = list(self.pending.values())
            self.pending.clear()
        if client is not None:
            client.close()
        if self._sender is not None:
            self._sender.join(timeout=5.0)
        # Entries still queued behind the sentinel were never registered in
        # ``pending``; without this sweep they would hold capacity forever.
        while not self._send_queue.empty():
            _, _, entry = self._send_queue.get_nowait()
            if entry is not None:
                pending.append(entry)
        for entry in pending:
            self.router._entry_failed(entry, self, "router is shutting down")

    # -- dispatch -----------------------------------------------------------

    def submit(self, entry):
        with self._lock:
            self._queue_seq += 1
            seq = self._queue_seq
        self._send_queue.put((-entry.priority, seq, entry))

    def _sender_loop(self):
        while True:
            _, _, entry = self._send_queue.get()
            if entry is None:
                return
            if entry.done:
                continue
            with self._lock:
                up = self.state == "up" and not self._stop.is_set()
                if up:
                    self.pending[entry.internal_id] = entry
                    client = self._client
                    generation = self.generation
            if not up:
                self.router._entry_failed(entry, self, self.last_error or "backend down")
                continue
            entry.dispatched = time.monotonic()
            try:
                client.send_line(entry.line)
            except (ConnectionError, TimeoutError) as error:
                self.fail(generation, f"send failed: {error}")
                reclaimed = self._reclaim(entry.internal_id)
                if reclaimed is not None:
                    self.router._entry_failed(reclaimed, self, str(error))

    def _reclaim(self, internal_id):
        with self._lock:
            return self.pending.pop(internal_id, None)

    def _reader_loop(self, client, generation):
        while True:
            try:
                response = client.recv_record()
            except (ConnectionError, TimeoutError, ValueError) as error:
                self.fail(generation, f"connection lost: {error}")
                return
            if response is None:
                self.fail(generation, "backend closed the connection")
                return
            entry = self._reclaim(response.get("id"))
            if entry is None:
                continue  # answered elsewhere already (late after a failover)
            self.router._entry_answered(entry, response, self)

    # -- failure / recovery -------------------------------------------------

    def fail(self, generation, reason):
        """Take the link down (idempotent per generation) and hand every
        pending entry back to the router for retry-or-error."""
        with self._lock:
            if generation != self.generation or self.state == "down":
                return
            self.state = "down"
            self.generation += 1
            self.last_error = reason
            self.ejections += 1
            client = self._client
            self._client = None
            pending = list(self.pending.values())
            self.pending.clear()
        if client is not None:
            client.close()  # unblocks the reader and any in-flight send
        self.router._on_backend_down(self, reason)
        for entry in pending:
            self.router._entry_failed(entry, self, reason)

    def try_revive(self):
        """One connect-and-ping attempt; on success the link rejoins."""
        if self._stop.is_set():
            return False
        client = SocketClient(self.host, self.port,
                              connect_timeout=self.router.connect_timeout)
        try:
            client.connect()
            response = client.request({"op": "ping", "id": "__kmt_router_probe__"},
                                      timeout=self.router.probe_timeout)
        except (ConnectionError, TimeoutError, ValueError):
            client.close()
            return False
        if not response.get("ok"):
            client.close()
            return False
        with self._lock:
            if self._stop.is_set() or self.state == "up":
                client.close()
                return self.state == "up"
            self._client = client
            self.state = "up"
            self.generation += 1
            generation = self.generation
        reader = threading.Thread(
            target=self._reader_loop, args=(client, generation),
            name=f"kmt-route-read-{self.key}", daemon=True)
        reader.start()
        self.router._on_backend_up(self)
        return True

    def _probe_loop(self):
        while not self._stop.wait(self.router.probe_interval):
            with self._lock:
                state = self.state
                generation = self.generation
                idle = not self.pending
            if state == "down":
                self.try_revive()
            elif idle:
                # In-band liveness check, but only on an idle link: when
                # traffic is flowing, responses (or a broken pipe) are the
                # health signal, and a ping queued behind a saturated send
                # buffer must not get a healthy backend ejected.
                call = _ControlCall({"op": "ping"}, self.router._next_internal_id())
                self.submit(call)
                if not call.event.wait(self.router.probe_timeout):
                    if call.finish():  # claim it so a late pong is ignored
                        self._reclaim(call.internal_id)
                        self.fail(generation, "health probe timed out")

    def control_request(self, record, timeout):
        """Send one router-internal request; the parsed response or ``None``."""
        with self._lock:
            if self.state != "up":
                return None
        call = _ControlCall(record, self.router._next_internal_id())
        self.submit(call)
        if call.event.wait(timeout):
            return call.response
        if call.finish():
            self._reclaim(call.internal_id)
        return None

    def info(self):
        with self._lock:
            return {
                "state": self.state,
                "routed": self.routed,
                "pending": len(self.pending),
                "ejections": self.ejections,
                "last_error": self.last_error,
            }


# ---------------------------------------------------------------------------
# the router
# ---------------------------------------------------------------------------


def parse_backends(specs):
    """``["host:port", ...]`` → ``[(host, port), ...]`` with validation."""
    from repro.utils.errors import KmtError

    backends = []
    seen = set()
    for spec in specs:
        host, _, port_text = str(spec).strip().rpartition(":")
        if not host or not port_text.isdigit():
            raise KmtError(f"backend must be HOST:PORT, got {spec!r}")
        address = (host, int(port_text))
        if address in seen:
            raise KmtError(f"duplicate backend {spec!r}")
        seen.add(address)
        backends.append(address)
    if not backends:
        raise KmtError("at least one backend is required")
    return backends


class Router:
    """Scheduler-shaped façade over N backend links (see module docstring).

    Implements the interface :class:`repro.engine.server.SocketServer`
    expects from a :class:`~repro.engine.server.QueryServer` — ``start()``,
    ``submit_line()``, ``wait_idle()``, ``shutdown()`` — so the same TCP
    front end serves both.
    """

    def __init__(self, backends, queue_limit=256, ring_replicas=64, max_retries=2,
                 probe_interval=1.0, probe_timeout=5.0, connect_timeout=3.0,
                 rate_limit=None, rate_burst=None, control_timeout=15.0):
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be at least 1, got {queue_limit}")
        if rate_limit is not None and rate_limit <= 0:
            raise ValueError(f"rate_limit must be positive, got {rate_limit}")
        self.queue_limit = queue_limit
        self.max_retries = max_retries
        self.probe_interval = probe_interval
        self.probe_timeout = probe_timeout
        self.connect_timeout = connect_timeout
        self.control_timeout = control_timeout
        self.rate_limit = rate_limit
        self.rate_burst = rate_burst if rate_burst is not None else \
            (max(1, int(2 * rate_limit)) if rate_limit is not None else None)
        self.metrics = MetricsRegistry()
        addresses = list(backends)
        if not addresses or not isinstance(addresses[0], tuple):
            addresses = parse_backends(addresses)
        self._links = {}
        for host, port in addresses:
            link = _BackendLink(self, host, port)
            self._links[link.key] = link
        self.ring = ConsistentHashRing(replicas=ring_replicas)
        self._ring_lock = threading.Lock()
        self._capacity = threading.Semaphore(queue_limit)
        self._state = threading.Condition()
        self._accepting = True
        self._in_flight = 0
        self._completed = 0
        self._retried = 0
        self._rejected = 0
        self._error_counts = {}
        self._id_lock = threading.Lock()
        self._id_counter = 0
        self._buckets = weakref.WeakKeyDictionary()
        self._buckets_lock = threading.Lock()
        self._started_monotonic = time.monotonic()
        self._started = False
        self._stopping = False

    # -- identities ----------------------------------------------------------

    def _next_internal_id(self):
        with self._id_lock:
            self._id_counter += 1
            return f"__kmt_r{self._id_counter}__"

    # -- lifecycle -----------------------------------------------------------

    def start(self):
        if self._started:
            return self
        self._started = True
        self._started_monotonic = time.monotonic()
        for link in self._links.values():
            link.start()
        return self

    def wait_ready(self, timeout=None):
        """Block until at least one backend is in the ring."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._ring_lock:
                if len(self.ring):
                    return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.05)

    def wait_all_up(self, timeout=None):
        """Block until every configured backend is in the ring."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._ring_lock:
                if len(self.ring) == len(self._links):
                    return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.05)

    def wait_idle(self, timeout=None):
        with self._state:
            return self._state.wait_for(lambda: self._in_flight == 0, timeout=timeout)

    def drain(self):
        with self._state:
            self._accepting = False
        self.wait_idle()

    def shutdown(self, drain=True):
        with self._state:
            self._accepting = False
        if drain:
            self.wait_idle(timeout=60.0)
        # From here, failed entries answer ``shutting_down`` instead of
        # retrying — a retry could land on a link whose sender just exited
        # and never be answered.
        self._stopping = True
        for link in self._links.values():
            link.stop()

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.shutdown()

    # -- intake (same contract as QueryServer.submit_line) -------------------

    def submit_line(self, raw, sink, lineno=None, block=True, timeout=None):
        kind, payload = parse_request_line(raw)
        if kind == "skip":
            return "skip"
        if kind == "quit":
            return "quit"
        if kind == "control":
            record = payload
            fallback_id = lineno if lineno is not None else record.get("id")
            sink.emit_now(self._control_response(record, fallback_id))
            return "control"
        seq = sink.next_seq()
        fallback_id = lineno if lineno is not None else seq
        if kind == "error":
            message, code, request = payload
            self._count_error(code)
            sink.emit(seq, error_response(request, fallback_id, None, message, code))
            return "error"
        record = payload
        theory = record.get("theory")
        theory = str(theory).lower() if theory is not None else None
        priority, priority_error = self._parse_priority(record)
        if priority_error is not None:
            self._count_error(ERROR_INVALID)
            sink.emit(seq, error_response(record, fallback_id, theory,
                                          priority_error, ERROR_INVALID))
            return "error"
        if self.rate_limit is not None and not self._bucket_for(sink).allow():
            self._count_error(ERROR_RATE_LIMITED)
            self.metrics.inc("router_rejected_total", (("reason", "rate_limited"),))
            sink.emit(seq, error_response(
                record, fallback_id, theory,
                f"client exceeds {self.rate_limit:g} requests/s "
                f"(burst {self.rate_burst:g})", ERROR_RATE_LIMITED))
            return "rejected"
        with self._state:
            accepting = self._accepting
        if not accepting:
            self._count_error(ERROR_SHUTDOWN)
            sink.emit(seq, error_response(
                record, fallback_id, theory, "router is shutting down", ERROR_SHUTDOWN))
            return "rejected"
        if not self._capacity.acquire(blocking=block, timeout=timeout):
            self._count_error(ERROR_QUEUE_FULL)
            self.metrics.inc("router_rejected_total", (("reason", "queue_full"),))
            sink.emit(seq, error_response(
                record, fallback_id, theory,
                f"router queue is full (limit {self.queue_limit})", ERROR_QUEUE_FULL))
            return "rejected"
        entry = _RoutedQuery(record, self._next_internal_id(), sink, seq,
                             fallback_id, theory, affinity_hash(record), priority)
        with self._state:
            self._in_flight += 1
        self.metrics.set_gauge("router_queue_depth", self._in_flight)
        self._dispatch(entry)
        return "queued"

    @staticmethod
    def _parse_priority(record):
        priority = record.get("priority")
        if priority is None:
            return 0, None
        if isinstance(priority, bool) or not isinstance(priority, (int, float)):
            return None, f"priority must be a number, got {priority!r}"
        return priority, None

    def _bucket_for(self, sink):
        with self._buckets_lock:
            bucket = self._buckets.get(sink)
            if bucket is None:
                bucket = TokenBucket(self.rate_limit, self.rate_burst)
                self._buckets[sink] = bucket
            return bucket

    # -- routing -------------------------------------------------------------

    def _dispatch(self, entry):
        with self._ring_lock:
            candidates = self.ring.preference(entry.key_hash)
        target = next((key for key in candidates if key not in entry.tried), None)
        if target is None:
            self._finish_with_error(
                entry, "no live backend for this request "
                f"({len(self._links) - len(candidates)} of {len(self._links)} down, "
                f"{entry.retries} retries used)", ERROR_BACKEND_DOWN)
            return
        entry.tried.add(target)
        link = self._links[target]
        with link._lock:
            link.routed += 1
        link.submit(entry)

    def _entry_failed(self, entry, link, reason):
        """A link could not answer ``entry``: retry on the next replica for
        its key, or answer ``backend_down``."""
        if entry.is_control:
            if entry.finish():
                entry.event.set()  # response stays None
            return
        if entry.done:
            return
        if self._stopping:
            self._finish_with_error(entry, "router is shutting down", ERROR_SHUTDOWN)
            return
        if entry.retries >= self.max_retries:
            self._finish_with_error(
                entry, f"backend {link.key} failed ({reason}) and the retry "
                f"budget ({self.max_retries}) is spent", ERROR_BACKEND_DOWN)
            return
        entry.retries += 1
        with self._state:
            self._retried += 1
        self.metrics.inc("router_retries_total", (("backend", link.key),))
        self._dispatch(entry)

    def _entry_answered(self, entry, response, link):
        if entry.is_control:
            if entry.finish():
                entry.response = response
                entry.event.set()
            return
        if not entry.finish():
            return  # a concurrent failure path already answered this id
        latency_ms = (time.monotonic() - entry.dispatched) * 1000.0
        self.metrics.observe("router_backend_latency_ms", latency_ms,
                             (("backend", link.key),))
        # Restore the client's view of the id: their own, or the protocol's
        # 0-based line-number fallback when they sent none.
        response["id"] = entry.client_id if entry.has_client_id else entry.fallback_id
        if entry.retries:
            response["retries"] = entry.retries
        self.metrics.inc("router_requests_total", (
            ("backend", link.key),
            ("outcome", response.get("error_code") or "ok"),
        ))
        self._emit_and_release(entry, response)

    def _finish_with_error(self, entry, message, code):
        if not entry.finish():
            return
        response = error_response(entry.record, entry.fallback_id, entry.theory,
                                  message, code)
        if entry.retries:
            response["retries"] = entry.retries
        self._count_error(code)
        self.metrics.inc("router_requests_total", (
            ("backend", "none"), ("outcome", code)))
        self._emit_and_release(entry, response)

    def _emit_and_release(self, entry, response):
        entry.sink.emit(entry.seq, response)
        self._capacity.release()
        with self._state:
            self._in_flight -= 1
            self._completed += 1
            code = response.get("error_code")
            if code is not None:
                self._error_counts[code] = self._error_counts.get(code, 0) + 1
            if self._in_flight == 0:
                self._state.notify_all()
        self.metrics.set_gauge("router_queue_depth", self._in_flight)

    def _count_error(self, code):
        with self._state:
            self._error_counts[code] = self._error_counts.get(code, 0) + 1

    # -- membership callbacks ------------------------------------------------

    def _on_backend_up(self, link):
        with self._ring_lock:
            already = link.key in self.ring
            self.ring.add(link.key)
        if not already:
            self.metrics.inc("router_rejoins_total", (("backend", link.key),))
            self._refresh_membership_gauges()
            log_event(_log, logging.INFO, "backend_joined", backend=link.key)

    def _on_backend_down(self, link, reason):
        with self._ring_lock:
            present = link.key in self.ring
            self.ring.remove(link.key)
        if present:
            self.metrics.inc("router_ejections_total", (("backend", link.key),))
            self._refresh_membership_gauges()
            log_event(_log, logging.WARNING, "backend_ejected",
                      backend=link.key, error=reason)

    def _refresh_membership_gauges(self):
        with self._ring_lock:
            up = len(self.ring)
        self.metrics.set_gauge("router_backends_up", up)
        self.metrics.set_gauge("router_backends_down", len(self._links) - up)

    # -- control ops ---------------------------------------------------------

    def router_stats(self):
        with self._state:
            completed = self._completed
            retried = self._retried
            errors = dict(self._error_counts)
            in_flight = self._in_flight
        with self._ring_lock:
            ring_nodes = self.ring.nodes
        return {
            "backends": {key: link.info() for key, link in sorted(self._links.items())},
            "ring": {"nodes": ring_nodes, "replicas": self.ring.replicas},
            "queue": {"limit": self.queue_limit, "in_flight": in_flight},
            "requests": {"completed": completed, "retried": retried,
                         "errors": errors},
            "rate_limit": self.rate_limit,
            "uptime_s": round(time.monotonic() - self._started_monotonic, 3),
        }

    def _fan_out(self, op):
        """Ask every live backend ``op``; ``{backend_key: response_or_None}``."""
        links = list(self._links.values())
        results = {}
        threads = []

        def ask(link):
            results[link.key] = link.control_request({"op": op}, self.control_timeout)

        for link in links:
            thread = threading.Thread(target=ask, args=(link,), daemon=True,
                                      name=f"kmt-route-fan-{link.key}")
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join(timeout=self.control_timeout + 1.0)
        return results

    def _control_response(self, record, fallback_id):
        response = {"id": record.get("id", fallback_id), "op": record["op"], "ok": True}
        if record["op"] == "stats":
            fanned = self._fan_out("stats")
            pool_blocks = []
            backend_servers = {}
            for key, reply in sorted(fanned.items()):
                if reply is None or not reply.get("ok"):
                    backend_servers[key] = None
                    continue
                result = dict(reply.get("result") or {})
                backend_servers[key] = result.pop("server", None)
                result.pop("snapshot", None)
                pool_blocks.append(result)
            merged = merge_pool_stats(pool_blocks)
            merged["router"] = self.router_stats()
            merged["router"]["backend_servers"] = backend_servers
            response["result"] = merged
        elif record["op"] == "metrics":
            fanned = self._fan_out("metrics")
            snapshots = [self.metrics.snapshot()]
            for reply in fanned.values():
                if reply is not None and reply.get("ok") and reply.get("result"):
                    snapshots.append(reply["result"])
            response["result"] = merge_metrics(snapshots)
        else:  # ping — answered locally so liveness never depends on backends
            with self._ring_lock:
                up = self.ring.nodes
            response["result"] = {
                "pong": True,
                "router": True,
                "backends_up": up,
                "backends_down": sorted(set(self._links) - set(up)),
            }
        return response

    def metrics_snapshot(self):
        """The router's own registry (no fan-out — that is the ``metrics``
        op), topped up with live gauges."""
        merged = merge_metrics([self.metrics.snapshot(), empty_snapshot()])
        with self._state:
            in_flight = self._in_flight
        with self._ring_lock:
            up = len(self.ring)
        for name, value in (("router_queue_depth", in_flight),
                            ("router_backends_up", up),
                            ("router_backends_down", len(self._links) - up),
                            ("queue_limit", self.queue_limit),
                            ("uptime_seconds",
                             round(time.monotonic() - self._started_monotonic, 3))):
            merged["gauges"][name] = [{"labels": {}, "value": value}]
        return merged

    def metrics_prometheus(self):
        return render_prometheus(self.metrics_snapshot())
