"""Bounded LRU memo tables with hit/miss accounting.

Every table is thread-safe (the batch front end runs per-theory sessions on a
``concurrent.futures`` pool, and the derivative table is shared process-wide)
and exposes :class:`CacheStats` so callers can verify that repeated work is
actually being reused — the acceptance criterion for the batch front end.

:class:`EngineCaches` bundles one table per concern.  The bundle is what the
engine passes down into the core (``KMT(caches=...)``); the core treats it as
an opaque duck-typed object, which keeps the core importable without the
engine package.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.core.arena import ArenaPool
from repro.engine.intern import fingerprint, fingerprint_normal_form

_MISS = object()


class CacheStats:
    """Hit/miss/eviction counters for one memo table."""

    def __init__(self, name):
        self.name = name
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0

    @property
    def lookups(self):
        return self.hits + self.misses

    @property
    def hit_rate(self):
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_dict(self):
        return {
            "name": self.name,
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }

    def __repr__(self):
        return f"CacheStats({self.as_dict()})"


class LRUCache:
    """A bounded least-recently-used map with ``get``/``put`` and stats.

    ``maxsize=None`` disables eviction (unbounded).  All operations take an
    internal lock, so a single instance may be shared across worker threads.
    """

    def __init__(self, maxsize=4096, name="cache"):
        if maxsize is not None and maxsize <= 0:
            raise ValueError(f"maxsize must be positive or None, got {maxsize}")
        self.maxsize = maxsize
        self.stats = CacheStats(name)
        self._data = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self):
        with self._lock:
            return len(self._data)

    def get(self, key, default=None):
        with self._lock:
            value = self._data.get(key, _MISS)
            if value is _MISS:
                self.stats.misses += 1
                return default
            self._data.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key, value):
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            self.stats.puts += 1
            if self.maxsize is not None and len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.stats.evictions += 1

    def get_or_compute(self, key, compute):
        """Return the cached value for ``key``, computing and storing on miss.

        ``compute`` runs outside the lock, so concurrent misses may compute
        twice; for the engine's pure functions that is merely redundant work.
        """
        value = self.get(key, _MISS)
        if value is not _MISS:
            return value
        value = compute()
        self.put(key, value)
        return value

    def clear(self):
        with self._lock:
            self._data.clear()


#: Process-wide memo for Brzozowski derivatives.  Derivatives are pure
#: functions of hash-consed (theory-independent) restricted actions, so one
#: shared table serves every session and theory; sessions holding the shared
#: bundle install it into :mod:`repro.core.automata` on construction (a
#: session built with a custom ``caches=`` bundle keeps its table private —
#: auto-installing it would hijack every other session's derivative caching).
DERIVATIVE_CACHE = LRUCache(maxsize=65536, name="deriv")


def installed_derivative_stats():
    """Stats for whatever derivative memo is *actually* installed process-wide.

    Aggregators (pool/server ``stats`` responses) must report the table that
    :func:`repro.core.automata.derivative` really consults — which is usually
    :data:`DERIVATIVE_CACHE` but can be a custom table installed explicitly,
    or nothing at all.  Returns a ``{"tables": {...}}`` block; the ``deriv``
    entry is absent when no table is installed.
    """
    from repro.core import automata  # local import: keep core/engine decoupled

    installed = automata.get_derivative_cache()
    stats = getattr(installed, "stats", None)
    if installed is None or not isinstance(stats, CacheStats):
        return {"tables": {}}
    return {"tables": {"deriv": stats.as_dict()}}


class EngineCaches:
    """The per-session bundle of memo tables the engine threads into the core.

    ================  =====================================================
    table             keyed by
    ================  =====================================================
    ``norm``          term fingerprint → ``NormalForm``
    ``sat_conj``      frozenset of ``(alpha, polarity)`` literals → bool
    ``sat_pred``      predicate fingerprint → bool
    ``equiv``         pair of normal-form fingerprint keys → result
    ``sig``           pair of restricted-action fingerprints → ``(bool, word)``
    ``aut``           restricted-action fingerprint → ``CompiledAutomaton``
    ``prog``          While-program source text → ``(WhileProgram, Term)``
    ``deriv``         ``(action, pi)`` → derivative (shared, process-wide)
    ================  =====================================================
    """

    def __init__(
        self,
        norm_size=4096,
        sat_conj_size=16384,
        sat_pred_size=4096,
        equiv_size=8192,
        sig_size=8192,
        aut_size=4096,
        prog_size=256,
        deriv=None,
    ):
        self.norm = LRUCache(norm_size, name="norm")
        self.sat_conj = LRUCache(sat_conj_size, name="sat_conj")
        self.sat_pred = LRUCache(sat_pred_size, name="sat_pred")
        self.equiv = LRUCache(equiv_size, name="equiv")
        self.sig = LRUCache(sig_size, name="sig")
        self.aut = LRUCache(aut_size, name="aut")
        self.prog = LRUCache(prog_size, name="prog")
        self.deriv = DERIVATIVE_CACHE if deriv is None else deriv
        # The per-session arena pool: compile_automaton adopts every automaton
        # it builds for this bundle, so ``aut_bytes`` reports the flat-table
        # footprint of whatever the aut LRU still retains (weak tracking — the
        # LRU's eviction policy stays the sole owner of automata lifetime).
        self.arenas = ArenaPool()

    # -- key builders (duck-typed interface used by repro.core.decision) ----
    def term_key(self, term):
        return fingerprint(term)

    def pred_key(self, pred):
        return fingerprint(pred)

    def nf_pair_key(self, x, y):
        return (fingerprint_normal_form(x), fingerprint_normal_form(y))

    def action_pair_key(self, left, right):
        """Key for the signature comparison memo (a restricted-action pair)."""
        return (fingerprint(left), fingerprint(right))

    # -- accounting ---------------------------------------------------------
    def all_caches(self):
        return (self.norm, self.sat_conj, self.sat_pred, self.equiv, self.sig,
                self.aut, self.prog, self.deriv)

    def private_caches(self):
        """The tables owned by this bundle (excludes a shared derivative memo)."""
        out = [self.norm, self.sat_conj, self.sat_pred, self.equiv, self.sig,
               self.aut, self.prog]
        if self.deriv is not DERIVATIVE_CACHE:
            out.append(self.deriv)
        return tuple(out)

    def stats(self, include_shared=True):
        """Nested hit/miss stats, plus aggregate totals.

        ``include_shared=False`` restricts the report to the tables this
        bundle owns, leaving out the process-wide derivative cache —
        aggregators summing over several bundles (e.g.
        :meth:`repro.engine.batch.SessionPool.stats`) use this to avoid
        counting the shared table once per session.
        """
        caches = self.all_caches() if include_shared else self.private_caches()
        per_table = {cache.stats.name: cache.stats.as_dict() for cache in caches}
        totals = {
            "hits": sum(cache.stats.hits for cache in caches),
            "misses": sum(cache.stats.misses for cache in caches),
        }
        return {"tables": per_table, "totals": totals,
                "aut_bytes": self.arenas.aut_bytes}

    def clear(self):
        """Drop this bundle's tables.

        The process-wide :data:`DERIVATIVE_CACHE` is deliberately left alone —
        other sessions are relying on it staying warm; clear it explicitly via
        ``DERIVATIVE_CACHE.clear()`` if that is really what you want.
        """
        for cache in self.private_caches():
            cache.clear()
