"""Bounded LRU memo tables with hit/miss accounting.

Every table is thread-safe (the batch front end runs per-theory sessions on a
``concurrent.futures`` pool, and the derivative table is shared process-wide)
and exposes :class:`CacheStats` so callers can verify that repeated work is
actually being reused — the acceptance criterion for the batch front end.

:class:`EngineCaches` bundles one table per concern.  The bundle is what the
engine passes down into the core (``KMT(caches=...)``); the core treats it as
an opaque duck-typed object, which keeps the core importable without the
engine package.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.core.arena import ArenaPool
from repro.engine.intern import fingerprint, fingerprint_normal_form

_MISS = object()

#: Cap on the key→object reverse maps a bundle keeps for snapshot export
#: (fingerprints are process-local counters, so exporting a table means
#: recovering the term/normal form behind each key).  Overflow drops the
#: oldest mappings, which only shrinks what a snapshot can export.
_KEY_MEMORY_LIMIT = 65536


class CacheStats:
    """Hit/miss/eviction counters for one memo table."""

    def __init__(self, name):
        self.name = name
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0

    @property
    def lookups(self):
        return self.hits + self.misses

    @property
    def hit_rate(self):
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_dict(self):
        """A dict view of the counters — **not** torn-read safe.

        Reading four counters while worker threads mutate them can produce a
        mutually inconsistent snapshot (e.g. a ``put`` counted whose ``miss``
        is not); aggregators must use :meth:`LRUCache.stats_snapshot`, which
        reads under the table lock.  Kept for reprs and single-threaded use.
        """
        return {
            "name": self.name,
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }

    def __repr__(self):
        return f"CacheStats({self.as_dict()})"


class _InFlight:
    """One in-progress ``get_or_compute`` computation (single-flight state)."""

    __slots__ = ("event", "value")

    def __init__(self):
        self.event = threading.Event()
        self.value = _MISS


class LRUCache:
    """A bounded least-recently-used map with ``get``/``put`` and stats.

    ``maxsize=None`` disables eviction (unbounded).  All operations take an
    internal lock, so a single instance may be shared across worker threads.
    """

    def __init__(self, maxsize=4096, name="cache"):
        if maxsize is not None and maxsize <= 0:
            raise ValueError(f"maxsize must be positive or None, got {maxsize}")
        self.maxsize = maxsize
        self.stats = CacheStats(name)
        self._data = OrderedDict()
        self._lock = threading.Lock()
        self._inflight = {}  # key -> _InFlight (single-flight get_or_compute)

    def __len__(self):
        with self._lock:
            return len(self._data)

    def get(self, key, default=None):
        with self._lock:
            value = self._data.get(key, _MISS)
            if value is _MISS:
                self.stats.misses += 1
                return default
            self._data.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key, value):
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            self.stats.puts += 1
            if self.maxsize is not None and len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.stats.evictions += 1

    def get_or_compute(self, key, compute):
        """Return the cached value for ``key``, computing and storing on miss.

        Single-flight per key: when several threads miss the same cold key
        concurrently, exactly one runs ``compute()`` (outside the lock — it
        may be an expensive compile) while the rest wait on a per-key event
        and receive the leader's value, so an expensive computation never
        runs twice for one key.  If the leader's ``compute`` raises, the
        exception propagates to the leader and one waiter retries (becoming
        the new leader); the rest keep waiting on *its* flight.

        Accounting: the leader records one miss + one put; each served
        waiter records one hit.
        """
        while True:
            with self._lock:
                value = self._data.get(key, _MISS)
                if value is not _MISS:
                    self._data.move_to_end(key)
                    self.stats.hits += 1
                    return value
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _InFlight()
                    self._inflight[key] = flight
                    self.stats.misses += 1
                    leader = True
                else:
                    leader = False
            if not leader:
                flight.event.wait()
                if flight.value is not _MISS:
                    with self._lock:
                        self.stats.hits += 1
                    return flight.value
                continue  # leader failed; retry (possibly leading this time)
            try:
                value = compute()
            except BaseException:
                with self._lock:
                    self._inflight.pop(key, None)
                flight.event.set()
                raise
            with self._lock:
                self._inflight.pop(key, None)
                if key in self._data:
                    self._data.move_to_end(key)
                self._data[key] = value
                self.stats.puts += 1
                if self.maxsize is not None and len(self._data) > self.maxsize:
                    self._data.popitem(last=False)
                    self.stats.evictions += 1
            flight.value = value
            flight.event.set()
            return value

    def stats_snapshot(self):
        """A point-in-time-consistent copy of the counters.

        Taken under the table lock, so the returned dict never mixes counter
        values from two different instants (``as_dict`` read live attributes
        and could report a ``put`` whose ``miss`` it missed).
        """
        with self._lock:
            stats = self.stats
            hits, misses = stats.hits, stats.misses
            lookups = hits + misses
            return {
                "name": stats.name,
                "hits": hits,
                "misses": misses,
                "puts": stats.puts,
                "evictions": stats.evictions,
                "hit_rate": round(hits / lookups, 4) if lookups else 0.0,
            }

    def items_snapshot(self):
        """A list copy of ``(key, value)`` pairs (LRU → MRU), taken atomically.

        Does not count as lookups and does not touch recency — this is the
        read path for snapshot export, not a query.
        """
        with self._lock:
            return list(self._data.items())

    def clear(self):
        with self._lock:
            self._data.clear()


#: Process-wide memo for Brzozowski derivatives.  Derivatives are pure
#: functions of hash-consed (theory-independent) restricted actions, so one
#: shared table serves every session and theory; sessions holding the shared
#: bundle install it into :mod:`repro.core.automata` on construction (a
#: session built with a custom ``caches=`` bundle keeps its table private —
#: auto-installing it would hijack every other session's derivative caching).
DERIVATIVE_CACHE = LRUCache(maxsize=65536, name="deriv")


def installed_derivative_stats():
    """Stats for whatever derivative memo is *actually* installed process-wide.

    Aggregators (pool/server ``stats`` responses) must report the table that
    :func:`repro.core.automata.derivative` really consults — which is usually
    :data:`DERIVATIVE_CACHE` but can be a custom table installed explicitly,
    or nothing at all.  Returns a ``{"tables": {...}}`` block; the ``deriv``
    entry is absent when no table is installed.
    """
    from repro.core import automata  # local import: keep core/engine decoupled

    installed = automata.get_derivative_cache()
    stats = getattr(installed, "stats", None)
    if installed is None or not isinstance(stats, CacheStats):
        return {"tables": {}}
    if hasattr(installed, "stats_snapshot"):
        return {"tables": {"deriv": installed.stats_snapshot()}}
    return {"tables": {"deriv": stats.as_dict()}}


class EngineCaches:
    """The per-session bundle of memo tables the engine threads into the core.

    ================  =====================================================
    table             keyed by
    ================  =====================================================
    ``norm``          term fingerprint → ``NormalForm``
    ``sat_conj``      frozenset of ``(alpha, polarity)`` literals → bool
    ``sat_pred``      predicate fingerprint → bool
    ``equiv``         pair of normal-form fingerprint keys → result
    ``sig``           pair of restricted-action fingerprints → ``(bool, word)``
    ``aut``           restricted-action fingerprint → ``CompiledAutomaton``
    ``prog``          While-program source text → ``(WhileProgram, Term)``
    ``deriv``         ``(action, pi)`` → derivative (shared, process-wide)
    ================  =====================================================
    """

    def __init__(
        self,
        norm_size=4096,
        sat_conj_size=16384,
        sat_pred_size=4096,
        equiv_size=8192,
        sig_size=8192,
        aut_size=4096,
        prog_size=256,
        deriv=None,
    ):
        self.norm = LRUCache(norm_size, name="norm")
        self.sat_conj = LRUCache(sat_conj_size, name="sat_conj")
        self.sat_pred = LRUCache(sat_pred_size, name="sat_pred")
        self.equiv = LRUCache(equiv_size, name="equiv")
        self.sig = LRUCache(sig_size, name="sig")
        self.aut = LRUCache(aut_size, name="aut")
        self.prog = LRUCache(prog_size, name="prog")
        self.deriv = DERIVATIVE_CACHE if deriv is None else deriv
        # The per-session arena pool: compile_automaton adopts every automaton
        # it builds for this bundle, so ``aut_bytes`` reports the flat-table
        # footprint of whatever the aut LRU still retains (weak tracking — the
        # LRU's eviction policy stays the sole owner of automata lifetime).
        self.arenas = ArenaPool()
        # Reverse maps from cache keys back to the objects that produced
        # them, recorded by the key builders.  Fingerprints are process-local
        # counters, so a snapshot cannot serialize the keys themselves; the
        # export path walks a table and uses these maps to recover the term /
        # normal form behind each key, serializing its *source text* instead
        # (re-fingerprinted at import).  Bounded at ``_KEY_MEMORY_LIMIT``:
        # overflow drops the oldest mappings, shrinking what a snapshot can
        # export but never affecting query correctness.
        self._key_lock = threading.Lock()
        self._fp_objects = OrderedDict()  # fingerprint -> Term (norm/aut/sig keys)
        self._nf_objects = OrderedDict()  # NF fingerprint key -> NormalForm

    def _remember(self, table, key, value):
        with self._key_lock:
            if key not in table:
                if len(table) >= _KEY_MEMORY_LIMIT:
                    table.popitem(last=False)
                table[key] = value

    # -- key builders (duck-typed interface used by repro.core.decision) ----
    def term_key(self, term):
        key = fingerprint(term)
        self._remember(self._fp_objects, key, term)
        return key

    def pred_key(self, pred):
        return fingerprint(pred)

    def nf_pair_key(self, x, y):
        kx, ky = fingerprint_normal_form(x), fingerprint_normal_form(y)
        self._remember(self._nf_objects, kx, x)
        self._remember(self._nf_objects, ky, y)
        return (kx, ky)

    def action_pair_key(self, left, right):
        """Key for the signature comparison memo (a restricted-action pair)."""
        kl, kr = fingerprint(left), fingerprint(right)
        self._remember(self._fp_objects, kl, left)
        self._remember(self._fp_objects, kr, right)
        return (kl, kr)

    def key_object(self, key):
        """The term a fingerprint key was built from (None if not recorded)."""
        with self._key_lock:
            return self._fp_objects.get(key)

    def key_normal_form(self, key):
        """The normal form an NF fingerprint key was built from (or None)."""
        with self._key_lock:
            return self._nf_objects.get(key)

    # -- accounting ---------------------------------------------------------
    def all_caches(self):
        return (self.norm, self.sat_conj, self.sat_pred, self.equiv, self.sig,
                self.aut, self.prog, self.deriv)

    def private_caches(self):
        """The tables owned by this bundle (excludes a shared derivative memo)."""
        out = [self.norm, self.sat_conj, self.sat_pred, self.equiv, self.sig,
               self.aut, self.prog]
        if self.deriv is not DERIVATIVE_CACHE:
            out.append(self.deriv)
        return tuple(out)

    def stats(self, include_shared=True):
        """Nested hit/miss stats, plus aggregate totals.

        ``include_shared=False`` restricts the report to the tables this
        bundle owns, leaving out the process-wide derivative cache —
        aggregators summing over several bundles (e.g.
        :meth:`repro.engine.batch.SessionPool.stats`) use this to avoid
        counting the shared table once per session.
        """
        caches = self.all_caches() if include_shared else self.private_caches()
        # One locked snapshot per table: the totals are summed over the same
        # dicts reported per-table, so a stats response can never show totals
        # that disagree with its own table rows (the counters were previously
        # read attribute-by-attribute while workers mutated them).
        snapshots = [cache.stats_snapshot() for cache in caches]
        per_table = {snap["name"]: snap for snap in snapshots}
        totals = {
            "hits": sum(snap["hits"] for snap in snapshots),
            "misses": sum(snap["misses"] for snap in snapshots),
        }
        return {"tables": per_table, "totals": totals,
                "aut_bytes": self.arenas.aut_bytes}

    def clear(self):
        """Drop this bundle's tables.

        The process-wide :data:`DERIVATIVE_CACHE` is deliberately left alone —
        other sessions are relying on it staying warm; clear it explicitly via
        ``DERIVATIVE_CACHE.clear()`` if that is really what you want.
        """
        for cache in self.private_caches():
            cache.clear()
        with self._key_lock:
            self._fp_objects.clear()
            self._nf_objects.clear()

    # -- snapshot export / import ------------------------------------------
    # The ``codec`` argument is duck-typed (it comes from
    # repro.engine.persist.SnapshotCodec, built around one session's theory
    # and parser); cache.py deliberately does not import persist, keeping the
    # dependency one-directional.
    def export_state(self, codec):
        """Serialize the persistable tables to a JSON-safe dict.

        Exports the ``norm`` / ``aut`` / ``sig`` / ``equiv`` / ``prog``
        tables — the expensive, replayable state.  The satisfiability memos
        are skipped (cheap to refill, and their keys carry raw theory
        objects).  Entries whose keys can no longer be mapped back to terms
        (reverse-map overflow) or that fail to encode (a custom theory whose
        primitives do not round-trip) are silently omitted: a snapshot is a
        warmth transfer, not a backup, so completeness is best-effort.

        Entries are emitted in canonical (term sort-key) order, not cache
        iteration order: the codec's node pool numbers subterms in encounter
        order, and a byte-stable snapshot for a given cache *state* requires
        a deterministic encounter order regardless of access history.
        """
        from repro.utils.errors import SnapshotError

        def nf_sort_key(nf):
            return tuple(
                (test.sort_key(), action.sort_key())
                for test, action in nf.sorted_pairs()
            )

        norm_items = []
        for key, nf in self.norm.items_snapshot():
            term = self.key_object(key)
            if term is not None:
                norm_items.append((term, nf))
        norm_items.sort(key=lambda item: item[0].sort_key())
        norm_entries = []
        for term, nf in norm_items:
            try:
                norm_entries.append(
                    {"t": codec.encode_term(term), "nf": codec.encode_normal_form(nf)}
                )
            except SnapshotError:
                continue
        aut_items = []
        for key, automaton in self.aut.items_snapshot():
            term = self.key_object(key)
            if term is not None:
                aut_items.append((term, automaton))
        aut_items.sort(key=lambda item: item[0].sort_key())
        aut_entries = []
        for term, automaton in aut_items:
            try:
                aut_entries.append(
                    {"t": codec.encode_term(term), "a": codec.encode_automaton(automaton)}
                )
            except SnapshotError:
                continue
        sig_items = []
        for key, verdict in self.sig.items_snapshot():
            kind = "equiv"
            if isinstance(key, tuple) and len(key) == 2 and key[0] == "incl":
                kind, key = "incl", key[1]
            left, right = self.key_object(key[0]), self.key_object(key[1])
            if left is None or right is None:
                continue
            sig_items.append((kind, left, right, verdict))
        sig_items.sort(
            key=lambda item: (item[0], item[1].sort_key(), item[2].sort_key()))
        sig_entries = []
        for kind, left, right, (ok, word) in sig_items:
            try:
                sig_entries.append({
                    "k": kind,
                    "l": codec.encode_term(left),
                    "r": codec.encode_term(right),
                    "ok": bool(ok),
                    "w": codec.encode_word(word),
                })
            except SnapshotError:
                continue
        equiv_items = []
        for key, result in self.equiv.items_snapshot():
            kind = "equiv"
            if isinstance(key, tuple) and len(key) == 2 and key[0] == "incl":
                kind, key = "incl", key[1]
            x, y = self.key_normal_form(key[0]), self.key_normal_form(key[1])
            if x is None or y is None:
                continue
            equiv_items.append((kind, x, y, result))
        equiv_items.sort(
            key=lambda item: (item[0], nf_sort_key(item[1]), nf_sort_key(item[2])))
        equiv_entries = []
        for kind, x, y, result in equiv_items:
            try:
                equiv_entries.append({
                    "k": kind,
                    "l": codec.encode_normal_form(x),
                    "r": codec.encode_normal_form(y),
                    "res": codec.encode_result(result),
                })
            except SnapshotError:
                continue
        prog_entries = [
            {"src": text}
            for text, _ in sorted(
                self.prog.items_snapshot(), key=lambda item: str(item[0]))
            if isinstance(text, str)
        ]
        return {"tables": {
            "norm": norm_entries,
            "aut": aut_entries,
            "sig": sig_entries,
            "equiv": equiv_entries,
            "prog": prog_entries,
        }}

    def stage_state(self, state, codec):
        """Decode an exported state into live objects **without installing**.

        Returns the staged ``{table: [entry objects]}`` dict consumed by
        :meth:`install_state`.  Decoding everything up front is what makes a
        rejected snapshot atomic: any malformed entry raises (wrapped into
        ``snapshot_invalid`` by the codec) before a single cache is touched.
        """
        tables = state.get("tables")
        if not isinstance(tables, dict):
            codec.invalid("snapshot session payload has no tables dict")
        staged = {"norm": [], "aut": [], "sig": [], "equiv": [], "prog": []}
        for entry in tables.get("norm", ()):
            staged["norm"].append(
                (codec.decode_term(entry["t"]), codec.decode_normal_form(entry["nf"]))
            )
        for entry in tables.get("aut", ()):
            staged["aut"].append(
                (codec.decode_term(entry["t"]), codec.decode_automaton(entry["a"]))
            )
        for entry in tables.get("sig", ()):
            kind = entry["k"]
            if kind not in ("equiv", "incl"):
                codec.invalid(f"unknown sig entry kind {kind!r}")
            staged["sig"].append((
                kind,
                codec.decode_term(entry["l"]),
                codec.decode_term(entry["r"]),
                (bool(entry["ok"]), codec.decode_word(entry["w"])),
            ))
        for entry in tables.get("equiv", ()):
            kind = entry["k"]
            if kind not in ("equiv", "incl"):
                codec.invalid(f"unknown equiv entry kind {kind!r}")
            staged["equiv"].append((
                kind,
                codec.decode_normal_form(entry["l"]),
                codec.decode_normal_form(entry["r"]),
                codec.decode_result(entry["res"], kind),
            ))
        for entry in tables.get("prog", ()):
            staged["prog"].append((entry["src"], codec.decode_program(entry["src"])))
        return staged

    def install_state(self, staged):
        """Install a staged state into the live tables; returns import counts.

        Key building goes through the normal key builders, so the reverse
        maps are re-recorded and an imported entry is re-exportable from this
        bundle.  Values are plain ``put``s — an import counts as puts, never
        as synthetic hits/misses.
        """
        for term, nf in staged["norm"]:
            self.norm.put(self.term_key(term), nf)
        for term, automaton in staged["aut"]:
            self.aut.put(self.term_key(term), automaton)
            self.arenas.adopt(automaton)
        for kind, left, right, verdict in staged["sig"]:
            key = self.action_pair_key(left, right)
            if kind == "incl":
                key = ("incl", key)
            self.sig.put(key, verdict)
        for kind, x, y, result in staged["equiv"]:
            key = self.nf_pair_key(x, y)
            if kind == "incl":
                key = ("incl", key)
            self.equiv.put(key, result)
        for src, value in staged["prog"]:
            self.prog.put(src, value)
        return {name: len(entries) for name, entries in staged.items()}

    def import_state(self, state, codec):
        """Decode and install an exported state (atomic: stage, then install)."""
        return self.install_state(self.stage_state(state, codec))
