"""JSONL batch protocol and serve loop over per-theory engine sessions.

One request per line, one JSON response per line, order preserved::

    {"op": "equiv", "theory": "incnat", "left": "inc(x); x > 1", "right": "x > 0; inc(x)"}
    {"op": "norm",  "theory": "bitvec", "term": "(flip a)*; a = T"}
    {"op": "sat",   "pred": "x > 3; ~(x > 5)"}
    {"op": "empty", "term": "x > 3; ~(x > 3)"}
    {"op": "leq",   "left": "inc(x)", "right": "inc(x) + inc(y)"}
    {"op": "inclusion", "left": "inc(x)", "right": "inc(x) + inc(y)"}
    {"op": "member", "term": "(inc(x))*; x > 1", "word": ["inc(x)", "inc(x)"]}
    {"op": "verify", "pre": "x > 0", "program": "inc(x);", "post": "x > 1"}
    {"op": "prog_equiv", "left": "skip;", "right": "if (x > 0) {} else {}"}
    {"op": "dead_code", "program": "abort; inc(x);"}

The last three take While-language program source (docs/GRAMMAR.md) instead
of bare KMT terms; see :mod:`repro.analysis.checks` for their result payloads.

Responses echo ``op``/``theory`` plus the request's ``id`` (defaulting to the
0-based line number) and carry either ``"ok": true`` with a ``result`` object
or ``"ok": false`` with an ``error`` string and a machine-readable
``error_code`` — malformed lines produce error records instead of aborting
the batch.  Replayed equivalence verdicts are flagged ``"cached": true`` so
their exploration counters are not mistaken for fresh work.

Batches are dispatched across a ``concurrent.futures`` thread pool with
*session affinity*: requests are grouped by theory and each group runs on its
theory's persistent :class:`~repro.engine.session.EngineSession`, so duplicate
and overlapping queries inside a batch hit the session caches instead of
re-normalizing.  The serve loop (``repro serve``) reads the same protocol from
stdin and answers on stdout, keeping one session pool alive for the whole
conversation; the extra ops ``{"op": "stats"}``, ``{"op": "ping"}`` and
``{"op": "metrics"}`` expose cache accounting, liveness and the aggregated
telemetry counters/histograms.  Any query may carry ``"trace": true`` to get
a per-phase timing breakdown back in its response (see
:mod:`repro.engine.telemetry`).

The request parsing/validation helpers (:func:`parse_request_line`,
:func:`execute_query`, :func:`error_response`, :func:`classify_query_error`)
are shared with the concurrent query server (:mod:`repro.engine.server`), so
the two front ends cannot drift apart on protocol details.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.core.pretty import pretty_normal_form
from repro.core.pushback import DEFAULT_BUDGET
from repro.engine.cache import installed_derivative_stats
from repro.engine.session import EngineSession
from repro.engine.telemetry import MetricsRegistry, Trace, activate, deactivate, log_event
from repro.theories import build_theory
from repro.utils.errors import KmtError, ParseError, QueryCancelled, WireProtocolError

_log = logging.getLogger("kmt.batch")

#: Ops that dispatch to a theory session.
QUERY_OPS = ("equiv", "leq", "inclusion", "member", "norm", "sat", "empty",
             "verify", "prog_equiv", "dead_code")
#: Control ops understood by the serve loop (and harmlessly by batches).
CONTROL_OPS = ("stats", "ping", "metrics")

DEFAULT_THEORY = "incnat"

# ---------------------------------------------------------------------------
# structured error codes (stable, machine-readable; the human-readable
# ``error`` string may change freely)
# ---------------------------------------------------------------------------
ERROR_MALFORMED = "malformed_request"
ERROR_UNKNOWN_OP = "unknown_op"
ERROR_UNKNOWN_THEORY = "unknown_theory"
ERROR_MISSING_FIELD = "missing_field"
ERROR_PARSE = "parse_error"
ERROR_INVALID = "invalid_request"
ERROR_DEADLINE = "deadline_exceeded"
ERROR_QUEUE_FULL = "queue_full"
ERROR_SHUTDOWN = "shutting_down"
ERROR_WORKER_CRASHED = "worker_crashed"
ERROR_SNAPSHOT_INVALID = "snapshot_invalid"
ERROR_INTERNAL = "internal_error"
# Cluster-router codes (see repro.engine.router): a request whose backend —
# and every retry replica — is unreachable answers ``backend_down``; a client
# over its token-bucket budget is refused with ``rate_limited``.
ERROR_BACKEND_DOWN = "backend_down"
ERROR_RATE_LIMITED = "rate_limited"


def parse_request_line(raw):
    """Classify one input line of the JSONL protocol.

    Returns a ``(kind, payload)`` pair:

    * ``("skip", None)`` — blank line or ``#`` comment (no response);
    * ``("quit", record)`` — a well-formed ``{"op": "quit"}`` record;
    * ``("control", record)`` — ``stats`` / ``ping``;
    * ``("query", record)`` — one of :data:`QUERY_OPS`;
    * ``("error", (message, code, record))`` — malformed JSON, a non-object
      record, or an unknown op.  ``record`` is the parsed request when one
      exists (``{}`` otherwise) so error responses can still echo the
      client's ``id`` — out-of-order completion depends on that.
    """
    line = raw.strip()
    if not line or line.startswith("#"):
        return "skip", None
    try:
        record = json.loads(line)
    except ValueError as error:
        return "error", (f"malformed request: {error}", ERROR_MALFORMED, {})
    if not isinstance(record, dict):
        return "error", ("malformed request: record must be a JSON object", ERROR_MALFORMED, {})
    op = record.get("op")
    if op == "quit":
        return "quit", record
    if op in CONTROL_OPS:
        return "control", record
    if op in QUERY_OPS:
        return "query", record
    return "error", (
        f"unknown op {op!r}; expected one of {', '.join(QUERY_OPS + CONTROL_OPS)}",
        ERROR_UNKNOWN_OP,
        record,
    )


# ---------------------------------------------------------------------------
# compact wire form (request/response serialization for the process backend)
# ---------------------------------------------------------------------------
#
# The process execution backend (:mod:`repro.engine.server`) ships every
# request to a worker process and every response back; rather than pickling
# parsed records, both directions round-trip through a *compact wire form*: a
# positional JSON array with a version tag, so the cross-process protocol is
# explicit, validated and language-agnostic.  ``decode ∘ encode`` is exact
# (``decode_wire_request(encode_wire_request(r)) == r`` for every record
# ``parse_request_line`` classifies as query/control/quit — including records
# with *missing* required fields, which must reach the worker unchanged so it
# reports the same ``missing_field`` error the thread backend would).
#
# Optional slots use a presence encoding: ``0`` for "absent", ``[value]`` for
# "present" — a plain ``null`` could not distinguish ``{"id": null}`` from no
# ``id`` at all.

WIRE_VERSION = 1

#: Per-op payload fields, in wire (positional) order.
_WIRE_FIELDS = {
    "equiv": ("left", "right"),
    "leq": ("left", "right"),
    "inclusion": ("left", "right"),
    "member": ("term", "word"),
    "norm": ("term",),
    "sat": ("pred",),
    "empty": ("term",),
    "verify": ("pre", "program", "post"),
    "prog_equiv": ("left", "right"),
    "dead_code": ("program",),
    "stats": (),
    "ping": (),
    "metrics": (),
    "quit": (),
}

#: Request fields every op may carry, in wire order.
_WIRE_REQUEST_OPTIONAL = ("id", "theory", "deadline_ms")

#: Response fields that may be absent (``id`` and ``ok`` are always present).
_WIRE_RESPONSE_OPTIONAL = ("op", "theory", "result", "error", "error_code")

_WIRE_ABSENT = object()


def _wire_opt(record, key):
    return [record[key]] if key in record else 0


def _wire_unwrap(cell, what):
    """Decode one presence-encoded slot; 0 = absent, [value] = present."""
    if isinstance(cell, list):
        if len(cell) != 1:
            raise WireProtocolError(
                f"malformed wire {what}: a present slot must be a 1-element array",
                ERROR_MALFORMED)
        return cell[0]
    if isinstance(cell, int) and not isinstance(cell, bool) and cell == 0:
        return _WIRE_ABSENT
    raise WireProtocolError(
        f"malformed wire {what}: slot must be 0 (absent) or [value], got {cell!r}",
        ERROR_MALFORMED)


def _wire_dumps(payload, what):
    try:
        return json.dumps(payload, separators=(",", ":"), sort_keys=False)
    except (TypeError, ValueError) as error:
        raise WireProtocolError(
            f"wire {what} is not JSON-serializable: {error}", ERROR_MALFORMED) from error


def _wire_frame(wire, what, arity):
    try:
        payload = json.loads(wire)
    except (TypeError, ValueError) as error:
        raise WireProtocolError(
            f"malformed wire {what}: {error}", ERROR_MALFORMED) from error
    if not isinstance(payload, list) or len(payload) != arity:
        raise WireProtocolError(
            f"malformed wire {what}: expected a {arity}-element array", ERROR_MALFORMED)
    if payload[0] != WIRE_VERSION:
        raise WireProtocolError(
            f"unsupported wire version {payload[0]!r} (this build speaks {WIRE_VERSION})",
            ERROR_MALFORMED)
    return payload


def _wire_extras(extras, what, reserved):
    if not isinstance(extras, dict):
        raise WireProtocolError(
            f"malformed wire {what}: extras must be an object", ERROR_MALFORMED)
    for key in extras:
        if not isinstance(key, str):
            raise WireProtocolError(
                f"malformed wire {what}: extra field names must be strings", ERROR_MALFORMED)
        if key in reserved:
            raise WireProtocolError(
                f"malformed wire {what}: extra field {key!r} collides with a "
                "positional slot", ERROR_MALFORMED)
    return extras


def encode_wire_request(record):
    """Encode one parsed request record into its compact wire line.

    Accepts any record :func:`parse_request_line` classifies as a query,
    control or quit (op must be known); raises
    :class:`~repro.utils.errors.WireProtocolError` otherwise.
    """
    if not isinstance(record, dict):
        raise WireProtocolError(
            "wire request must be encoded from a JSON-object record", ERROR_MALFORMED)
    op = record.get("op")
    fields = _WIRE_FIELDS.get(op)
    if fields is None:
        raise WireProtocolError(
            f"unknown op {op!r}; expected one of {', '.join(_WIRE_FIELDS)}",
            ERROR_UNKNOWN_OP)
    reserved = ("op",) + fields + _WIRE_REQUEST_OPTIONAL
    extras = {key: value for key, value in record.items() if key not in reserved}
    return _wire_dumps(
        [
            WIRE_VERSION,
            op,
            [_wire_opt(record, field) for field in fields],
            [_wire_opt(record, key) for key in _WIRE_REQUEST_OPTIONAL],
            extras,
        ],
        "request",
    )


def decode_wire_request(wire):
    """Decode a compact wire line back into the exact original record.

    Malformed input is rejected with :class:`WireProtocolError` carrying a
    stable ``code`` (``malformed_request`` for framing/shape problems,
    ``unknown_op`` for a well-framed unknown op).
    """
    _, op, field_part, optional_part, extras = _wire_frame(wire, "request", 5)
    fields = _WIRE_FIELDS.get(op)
    if fields is None:
        raise WireProtocolError(
            f"unknown op {op!r}; expected one of {', '.join(_WIRE_FIELDS)}",
            ERROR_UNKNOWN_OP)
    if not isinstance(field_part, list) or len(field_part) != len(fields):
        raise WireProtocolError(
            f"malformed wire request: op {op!r} carries {len(fields)} payload "
            "slots", ERROR_MALFORMED)
    if not isinstance(optional_part, list) or len(optional_part) != len(_WIRE_REQUEST_OPTIONAL):
        raise WireProtocolError(
            f"malformed wire request: expected {len(_WIRE_REQUEST_OPTIONAL)} "
            "optional slots", ERROR_MALFORMED)
    record = {"op": op}
    for name, cell in zip(fields, field_part):
        value = _wire_unwrap(cell, "request")
        if value is not _WIRE_ABSENT:
            record[name] = value
    for name, cell in zip(_WIRE_REQUEST_OPTIONAL, optional_part):
        value = _wire_unwrap(cell, "request")
        if value is not _WIRE_ABSENT:
            record[name] = value
    reserved = ("op",) + fields + _WIRE_REQUEST_OPTIONAL
    record.update(_wire_extras(extras, "request", reserved))
    return record


def encode_wire_response(response):
    """Encode one response record (``id`` and ``ok`` required) for the wire."""
    if not isinstance(response, dict) or "id" not in response or "ok" not in response:
        raise WireProtocolError(
            "wire response must be a record carrying 'id' and 'ok'", ERROR_MALFORMED)
    if not isinstance(response["ok"], bool):
        raise WireProtocolError("wire response 'ok' must be a boolean", ERROR_MALFORMED)
    reserved = ("id", "ok") + _WIRE_RESPONSE_OPTIONAL
    extras = {key: value for key, value in response.items() if key not in reserved}
    return _wire_dumps(
        [
            WIRE_VERSION,
            [response["id"]],
            response["ok"],
            [_wire_opt(response, key) for key in _WIRE_RESPONSE_OPTIONAL],
            extras,
        ],
        "response",
    )


def decode_wire_response(wire):
    """Decode a compact wire response line back into the exact response dict."""
    _, id_cell, ok, optional_part, extras = _wire_frame(wire, "response", 5)
    id_value = _wire_unwrap(id_cell, "response")
    if id_value is _WIRE_ABSENT:
        raise WireProtocolError(
            "malformed wire response: 'id' is required", ERROR_MALFORMED)
    if not isinstance(ok, bool):
        raise WireProtocolError(
            "malformed wire response: 'ok' must be a boolean", ERROR_MALFORMED)
    if not isinstance(optional_part, list) or len(optional_part) != len(_WIRE_RESPONSE_OPTIONAL):
        raise WireProtocolError(
            f"malformed wire response: expected {len(_WIRE_RESPONSE_OPTIONAL)} "
            "optional slots", ERROR_MALFORMED)
    response = {"id": id_value, "ok": ok}
    for name, cell in zip(_WIRE_RESPONSE_OPTIONAL, optional_part):
        value = _wire_unwrap(cell, "response")
        if value is not _WIRE_ABSENT:
            response[name] = value
    reserved = ("id", "ok") + _WIRE_RESPONSE_OPTIONAL
    response.update(_wire_extras(extras, "response", reserved))
    return response


def classify_query_error(error):
    """Map an exception from query execution to ``(message, error_code)``."""
    if isinstance(error, KeyError):
        return f"missing field {error.args[0]!r}", ERROR_MISSING_FIELD
    if isinstance(error, QueryCancelled):
        return str(error), ERROR_DEADLINE
    if isinstance(error, ParseError):
        return str(error), ERROR_PARSE
    return str(error), ERROR_INVALID


def error_response(record, fallback_id, theory_name, message, code):
    """Build one ``"ok": false`` response record."""
    out = {
        "id": record.get("id", fallback_id) if isinstance(record, dict) else fallback_id,
        "ok": False,
        "error": message,
        "error_code": code,
    }
    if isinstance(record, dict) and record.get("op") is not None:
        out["op"] = record.get("op")
    if theory_name is not None:
        out["theory"] = theory_name
    return out


def execute_query(session, record, cancel=None):
    """Run one query record on a session; returns the ``result`` payload.

    Raises ``KmtError`` (or ``KeyError`` for missing fields) — callers convert
    those into error records via :func:`classify_query_error`.  ``cancel`` is
    the optional cooperative-cancellation hook threaded through the session
    into normalization and the decision procedure.
    """
    op = record["op"]
    if op == "equiv":
        result = session.check_equivalent(record["left"], record["right"], cancel=cancel)
        payload = {
            "equivalent": result.equivalent,
            "cells_explored": result.cells_explored,
            "cells_pruned": result.cells_pruned,
            "signatures_explored": result.signatures_explored,
        }
        if result.cached:
            # Replayed verdict: the counters above describe the run that
            # first computed it, not work done for this request.
            payload["cached"] = True
        if result.counterexample is not None:
            payload["counterexample"] = result.counterexample.describe()
        return payload
    if op == "leq":
        return {"leq": session.less_or_equal(record["left"], record["right"], cancel=cancel)}
    if op == "inclusion":
        result = session.check_inclusion(record["left"], record["right"], cancel=cancel)
        payload = {
            "includes": result.includes,
            "cells_explored": result.cells_explored,
            "cells_pruned": result.cells_pruned,
            "signatures_explored": result.signatures_explored,
        }
        if result.cached:
            payload["cached"] = True
        if result.counterexample is not None:
            payload["counterexample"] = result.counterexample.describe()
            # The machine-readable form of the witness: a shortest word in
            # L(left) \ L(right), one primitive action per element.
            payload["witness_word"] = [str(pi) for pi in result.counterexample.word or ()]
        return payload
    if op == "member":
        return {"member": session.member(record["term"], record["word"], cancel=cancel)}
    if op == "norm":
        nf = session.normalize(record["term"], cancel=cancel)
        return {"normal_form": pretty_normal_form(nf), "summands": len(nf)}
    if op == "sat":
        return {"satisfiable": session.satisfiable(record["pred"])}
    if op == "empty":
        return {"empty": session.is_empty(record["term"], cancel=cancel)}
    # Program-analysis ops: While source text in, spans/witnesses out (see
    # repro.analysis.checks; docs/GRAMMAR.md specifies the program syntax).
    if op == "verify":
        return session.verify(record["pre"], record["program"], record["post"],
                              cancel=cancel)
    if op == "prog_equiv":
        return session.prog_equiv(record["left"], record["right"], cancel=cancel)
    if op == "dead_code":
        return session.dead_code(record["program"], cancel=cancel)
    raise KmtError(f"unknown op {op!r}; expected one of {', '.join(QUERY_OPS)}")


def _cache_table_snapshot(caches):
    """Per-table ``(hits, misses)`` for the session-private cache tables.

    The process-wide shared derivative memo is deliberately excluded: under
    concurrency its deltas would blend other requests' traffic into this
    request's trace.
    """
    private = getattr(caches, "private_caches", None)
    if private is None:
        return {}
    return {cache.stats.name: (cache.stats.hits, cache.stats.misses)
            for cache in private()}


def _cache_table_deltas(before, after):
    out = {}
    for name, (hits, misses) in after.items():
        hits_before, misses_before = before.get(name, (0, 0))
        delta_hits, delta_misses = hits - hits_before, misses - misses_before
        if delta_hits or delta_misses:
            out[name] = {"hits": delta_hits, "misses": delta_misses}
    return out


def run_query(session, record, cancel=None, force_trace=False):
    """Execute one query, honoring the request's ``"trace": true`` flag.

    Returns ``(result, trace_payload)``; the payload is ``None`` on the
    untraced fast path (one dict lookup of overhead).  When tracing, a
    :class:`~repro.engine.telemetry.Trace` is activated on this thread for
    the duration of the query so every instrumented layer (session
    normalization, signature/cell search, comparison memo, automaton
    compilation + minimization, product walks) records its spans into it.
    The payload carries the phase self-time breakdown, ``exec_ms`` (the whole
    execution window), ``unattributed_ms`` (window time no phase claims:
    parsing, routing, memo lookups), and per-table cache hit/miss deltas
    observed across the query — the caller must hold the session lock, which
    makes those deltas attributable to this request alone.  ``force_trace``
    traces a request that did not ask (the slow-query log), in which case the
    caller is responsible for stripping the payload from the client response.
    Failed queries raise exactly as :func:`execute_query` does; the partial
    trace is discarded with them.
    """
    if not (force_trace or record.get("trace")):
        return execute_query(session, record, cancel=cancel), None
    trace = Trace()
    tables_before = _cache_table_snapshot(session.caches)
    started = time.monotonic()
    activate(trace)
    try:
        result = execute_query(session, record, cancel=cancel)
    finally:
        deactivate()
    exec_ms = (time.monotonic() - started) * 1000.0
    payload = trace.payload()
    payload["exec_ms"] = round(exec_ms, 3)
    payload["unattributed_ms"] = round(max(0.0, exec_ms - trace.attributed_ms()), 3)
    payload["cache"] = _cache_table_deltas(
        tables_before, _cache_table_snapshot(session.caches))
    return result, payload


class SessionPool:
    """Lazily-built, persistent :class:`EngineSession` per theory preset.

    ``theory_factory`` maps a preset name to a ``Theory`` (default
    :func:`repro.theories.build_theory`); benchmarks and tests inject wrappers
    here, e.g. to model external-solver oracle latency.
    """

    def __init__(self, budget=DEFAULT_BUDGET, prune_unsat_cells=True, cell_search="signature",
                 theory_factory=None, walk_kernel="flat"):
        self.budget = budget
        self.prune_unsat_cells = prune_unsat_cells
        self.cell_search = cell_search
        self.walk_kernel = walk_kernel
        self.theory_factory = build_theory if theory_factory is None else theory_factory
        self._sessions = {}
        self._lock = threading.Lock()

    def session(self, theory_name):
        """The session for a theory preset, creating it on first use."""
        key = theory_name.lower()
        with self._lock:
            existing = self._sessions.get(key)
            if existing is not None:
                return existing
        # Theory construction can raise KmtError for unknown presets; build
        # outside the lock, then publish (a racing duplicate is discarded).
        session = EngineSession(
            self.theory_factory(key), budget=self.budget,
            prune_unsat_cells=self.prune_unsat_cells, cell_search=self.cell_search,
            walk_kernel=self.walk_kernel,
        )
        with self._lock:
            return self._sessions.setdefault(key, session)

    def theories(self):
        with self._lock:
            return sorted(self._sessions)

    def stats(self):
        """Per-session cache stats, with the process-wide tables reported once.

        Every session shares the process-wide derivative cache, so including
        it in each per-theory block would count the same hits/misses once per
        session; per-theory blocks therefore cover only session-owned tables,
        and the *actually installed* shared table (see
        :func:`repro.engine.cache.installed_derivative_stats` — not
        necessarily the default one) appears once under ``"shared"``.
        """
        with self._lock:
            sessions = dict(self._sessions)
        out = {
            name: session.stats(include_shared=False)
            for name, session in sorted(sessions.items())
        }
        out["shared"] = installed_derivative_stats()
        return out

    def sessions_snapshot(self):
        """The live ``{preset: session}`` map (copied under the pool lock)."""
        with self._lock:
            return dict(self._sessions)

    def export_snapshot(self):
        """Every live session's cache state as one versioned snapshot payload."""
        from repro.engine import persist

        return persist.make_payload({
            name: session.export_state()
            for name, session in sorted(self.sessions_snapshot().items())
        })

    def import_snapshot(self, payload):
        """Warm the pool from a snapshot payload; returns per-theory counts.

        Sessions named by the payload are created on demand.  The whole
        payload is staged (every session decoded against its live theory)
        before anything is installed, so a rejected snapshot — foreign
        format, stale version, theory mismatch, corrupted entry — raises
        :class:`~repro.utils.errors.SnapshotError` and leaves every cache
        untouched.
        """
        from repro.engine import persist
        from repro.utils.errors import SnapshotError

        sessions_payload = persist.check_payload(payload)
        staged = []
        for name, state in sorted(sessions_payload.items()):
            try:
                session = self.session(str(name))
            except KmtError as error:
                raise SnapshotError(
                    f"snapshot references unavailable theory preset {name!r}: {error}"
                ) from error
            staged.append(
                (name, session, persist.stage_session_state(session, state))
            )
        counts = {}
        for name, session, entries in staged:
            counts[name] = session.caches.install_state(entries)
        return counts


class BatchRunner:
    """Parse, group and execute a JSONL batch on a session pool."""

    def __init__(self, pool=None, default_theory=DEFAULT_THEORY, budget=DEFAULT_BUDGET, jobs=None,
                 cell_search=None, slow_query_ms=None, walk_kernel=None):
        # ``cell_search=None`` / ``walk_kernel=None`` mean "whatever the pool
        # uses" — an explicit value must not be silently ignored when a caller
        # also passes a pool built with a different strategy.
        if pool is not None:
            if cell_search is not None and cell_search != pool.cell_search:
                raise ValueError(
                    f"cell_search={cell_search!r} conflicts with the supplied "
                    f"pool's cell_search={pool.cell_search!r}"
                )
            if walk_kernel is not None and walk_kernel != pool.walk_kernel:
                raise ValueError(
                    f"walk_kernel={walk_kernel!r} conflicts with the supplied "
                    f"pool's walk_kernel={pool.walk_kernel!r}"
                )
            self.pool = pool
        else:
            self.pool = SessionPool(
                budget=budget,
                cell_search="signature" if cell_search is None else cell_search,
                walk_kernel="flat" if walk_kernel is None else walk_kernel,
            )
        self.default_theory = default_theory
        self.jobs = jobs
        self.slow_query_ms = slow_query_ms
        self.metrics = MetricsRegistry()
        # Attached by the CLI when serving with --snapshot; surfaces the
        # checkpoint counters as the "snapshot" block of stats responses.
        self.snapshot_manager = None

    def run_lines(self, lines, index_offset=0):
        """Execute an iterable of JSONL lines; returns response dicts in order.

        Blank lines and ``#`` comments are skipped (no response record).
        Default ``id``s are 0-based *input* line numbers, so error records can
        be correlated back to the file even when comments/blanks interleave.
        ``index_offset`` shifts the numbering — the serve loop feeds one line
        at a time and passes the running stdin line number so defaults keep
        advancing across calls.  ``lines`` is consumed lazily (one line at a
        time), so a streamed file handle never has to fit in memory at once.
        """
        requests = []   # (index, record) for valid query records
        controls = []   # (index, record) for stats/ping — answered post-batch
        responses = {}  # index -> response dict
        order = []      # indices with responses, in input order
        for index, raw in enumerate(lines, start=index_offset):
            kind, payload = parse_request_line(raw)
            if kind == "skip":
                continue
            order.append(index)
            if kind == "control":
                controls.append((index, payload))
            elif kind == "query":
                requests.append((index, payload))
            elif kind == "quit":
                # ``quit`` is a serve/server control, meaningless inside a
                # batch file — report it rather than silently dropping it.
                responses[index] = error_response(
                    payload, index, None,
                    "op 'quit' is only valid in serve mode; expected one of "
                    f"{', '.join(QUERY_OPS + CONTROL_OPS)}",
                    ERROR_UNKNOWN_OP,
                )
            else:  # "error"
                message, code, request = payload
                responses[index] = error_response(request, index, None, message, code)
        self._execute_grouped(requests, responses)
        # Control responses are built after the queries ran, so a trailing
        # {"op": "stats"} reflects the batch it is part of.
        for index, record in controls:
            responses[index] = self._control_response(record, index)
        return [responses[index] for index in order]

    def _control_response(self, record, index):
        response = {"id": record.get("id", index), "op": record["op"], "ok": True}
        if record["op"] == "stats":
            result = self.pool.stats()
            if self.snapshot_manager is not None:
                result["snapshot"] = self.snapshot_manager.stats()
            response["result"] = result
        elif record["op"] == "metrics":
            response["result"] = self.metrics.snapshot()
        else:
            response["result"] = {"pong": True, "theories": self.pool.theories()}
        return response

    def _execute_grouped(self, requests, responses):
        groups = {}  # theory name -> [(index, record)]
        for index, record in requests:
            theory_name = str(record.get("theory", self.default_theory)).lower()
            groups.setdefault(theory_name, []).append((index, record))
        if not groups:
            return
        max_workers = self.jobs if self.jobs else len(groups)
        max_workers = max(1, min(max_workers, len(groups)))
        if max_workers == 1:
            for theory_name, group in groups.items():
                responses.update(self._run_group(theory_name, group))
            return
        with ThreadPoolExecutor(max_workers=max_workers) as executor:
            futures = [
                executor.submit(self._run_group, theory_name, group)
                for theory_name, group in groups.items()
            ]
            for future in futures:
                responses.update(future.result())

    def _run_group(self, theory_name, group):
        out = {}
        try:
            session = self.pool.session(theory_name)
        except KmtError as error:
            for index, record in group:
                out[index] = error_response(record, index, theory_name, str(error),
                                            ERROR_UNKNOWN_THEORY)
            return out
        with session.lock:
            for index, record in group:
                base = {
                    "id": record.get("id", index),
                    "op": record["op"],
                    "theory": theory_name,
                }
                started = time.monotonic()
                trace_payload = None
                try:
                    base["ok"] = True
                    base["result"], trace_payload = run_query(
                        session, record, force_trace=self.slow_query_ms is not None)
                except (KmtError, KeyError, TypeError, ValueError) as error:
                    message, code = classify_query_error(error)
                    base = error_response(record, index, theory_name, message, code)
                elapsed_ms = (time.monotonic() - started) * 1000.0
                if trace_payload is not None:
                    trace_payload["total_ms"] = round(elapsed_ms, 3)
                    if record.get("trace"):
                        base["trace"] = trace_payload
                outcome = base.get("error_code", "ok")
                labels = (("theory", theory_name), ("op", record["op"]))
                self.metrics.inc("requests_total", labels + (("outcome", outcome),))
                self.metrics.observe("request_latency_ms", elapsed_ms, labels)
                if self.slow_query_ms is not None and elapsed_ms >= self.slow_query_ms:
                    log_event(_log, logging.WARNING, "slow_query",
                              request_id=base.get("id"), op=record["op"],
                              theory=theory_name, total_ms=round(elapsed_ms, 3),
                              outcome=outcome,
                              phases=(trace_payload or {}).get("phases"),
                              cache=(trace_payload or {}).get("cache"))
                out[index] = base
        return out


def run_batch_lines(lines, default_theory=DEFAULT_THEORY, budget=DEFAULT_BUDGET,
                    jobs=None, pool=None, cell_search=None, walk_kernel=None):
    """Convenience wrapper: run a batch, return ``(responses, pool)``."""
    runner = BatchRunner(pool=pool, default_theory=default_theory, budget=budget, jobs=jobs,
                         cell_search=cell_search, walk_kernel=walk_kernel)
    return runner.run_lines(lines), runner.pool


def serve(stdin, stdout, default_theory=DEFAULT_THEORY, budget=DEFAULT_BUDGET, pool=None,
          cell_search=None, slow_query_ms=None, walk_kernel=None,
          snapshot_manager=None):
    """The blocking one-at-a-time serve loop (see also :mod:`repro.engine.server`).

    One JSON request per stdin line, one answer per line, strictly in order;
    runs until EOF or ``{"op": "quit"}``.  The session pool persists across
    requests, so a client issuing overlapping queries over time gets the same
    amortization as a batch.  Returns the number of protocol-valid requests
    served — malformed lines still get an error record on stdout but do not
    count as served requests.

    Default ``id``s follow batch semantics: the 0-based stdin line number
    (blank and comment lines occupy a number but produce no response), so the
    running offset is threaded into each single-line ``run_lines`` call.

    ``repro serve`` now runs the concurrent :class:`repro.engine.server.QueryServer`
    by default; this loop remains as the ``--legacy`` implementation and as
    the single-threaded baseline for ``benchmarks/bench_serve.py``.
    """
    runner = BatchRunner(pool=pool, default_theory=default_theory, budget=budget, jobs=1,
                         cell_search=cell_search, slow_query_ms=slow_query_ms,
                         walk_kernel=walk_kernel)
    runner.snapshot_manager = snapshot_manager
    served = 0
    for lineno, raw in enumerate(stdin):
        kind, payload = parse_request_line(raw)
        if kind == "skip":
            continue
        if kind == "quit":
            break
        if kind == "error":
            # Answered, but not *served*: the line never was a valid request.
            message, code, request = payload
            stdout.write(json.dumps(error_response(request, lineno, None, message, code),
                                    sort_keys=True) + "\n")
            stdout.flush()
            continue
        for response in runner.run_lines([raw], index_offset=lineno):
            stdout.write(json.dumps(response, sort_keys=True) + "\n")
        stdout.flush()
        served += 1
    return served
