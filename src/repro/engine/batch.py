"""JSONL batch protocol and serve loop over per-theory engine sessions.

One request per line, one JSON response per line, order preserved::

    {"op": "equiv", "theory": "incnat", "left": "inc(x); x > 1", "right": "x > 0; inc(x)"}
    {"op": "norm",  "theory": "bitvec", "term": "(flip a)*; a = T"}
    {"op": "sat",   "pred": "x > 3; ~(x > 5)"}
    {"op": "empty", "term": "x > 3; ~(x > 3)"}
    {"op": "leq",   "left": "inc(x)", "right": "inc(x) + inc(y)"}

Responses echo ``op``/``theory`` plus the request's ``id`` (defaulting to the
0-based line number) and carry either ``"ok": true`` with a ``result`` object
or ``"ok": false`` with an ``error`` string — malformed lines produce error
records instead of aborting the batch.

Batches are dispatched across a ``concurrent.futures`` thread pool with
*session affinity*: requests are grouped by theory and each group runs on its
theory's persistent :class:`~repro.engine.session.EngineSession`, so duplicate
and overlapping queries inside a batch hit the session caches instead of
re-normalizing.  The serve loop (``repro serve``) reads the same protocol from
stdin and answers on stdout, keeping one session pool alive for the whole
conversation; the extra ops ``{"op": "stats"}`` and ``{"op": "ping"}`` expose
cache accounting and liveness.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.core.pretty import pretty_normal_form
from repro.core.pushback import DEFAULT_BUDGET
from repro.engine.cache import DERIVATIVE_CACHE
from repro.engine.session import EngineSession
from repro.theories import build_theory
from repro.utils.errors import KmtError

#: Ops that dispatch to a theory session.
QUERY_OPS = ("equiv", "leq", "norm", "sat", "empty")
#: Control ops understood by the serve loop (and harmlessly by batches).
CONTROL_OPS = ("stats", "ping")

DEFAULT_THEORY = "incnat"


class SessionPool:
    """Lazily-built, persistent :class:`EngineSession` per theory preset."""

    def __init__(self, budget=DEFAULT_BUDGET, prune_unsat_cells=True, cell_search="signature"):
        self.budget = budget
        self.prune_unsat_cells = prune_unsat_cells
        self.cell_search = cell_search
        self._sessions = {}
        self._lock = threading.Lock()

    def session(self, theory_name):
        """The session for a theory preset, creating it on first use."""
        key = theory_name.lower()
        with self._lock:
            existing = self._sessions.get(key)
            if existing is not None:
                return existing
        # Theory construction can raise KmtError for unknown presets; build
        # outside the lock, then publish (a racing duplicate is discarded).
        session = EngineSession(
            build_theory(key), budget=self.budget,
            prune_unsat_cells=self.prune_unsat_cells, cell_search=self.cell_search,
        )
        with self._lock:
            return self._sessions.setdefault(key, session)

    def theories(self):
        with self._lock:
            return sorted(self._sessions)

    def stats(self):
        """Per-session cache stats, with the process-wide tables reported once.

        Every session shares the process-wide derivative cache, so including
        it in each per-theory block would count the same hits/misses once per
        session; per-theory blocks therefore cover only session-owned tables,
        and the shared derivative table appears once under ``"shared"``.
        """
        with self._lock:
            sessions = dict(self._sessions)
        out = {
            name: session.stats(include_shared=False)
            for name, session in sorted(sessions.items())
        }
        out["shared"] = {"tables": {"deriv": DERIVATIVE_CACHE.stats.as_dict()}}
        return out


def execute_query(session, record):
    """Run one query record on a session; returns the ``result`` payload.

    Raises ``KmtError`` (or ``KeyError`` for missing fields) — the batch
    runner converts those into error records.
    """
    op = record["op"]
    if op == "equiv":
        result = session.check_equivalent(record["left"], record["right"])
        payload = {
            "equivalent": result.equivalent,
            "cells_explored": result.cells_explored,
            "cells_pruned": result.cells_pruned,
            "signatures_explored": result.signatures_explored,
        }
        if result.counterexample is not None:
            payload["counterexample"] = result.counterexample.describe()
        return payload
    if op == "leq":
        return {"leq": session.less_or_equal(record["left"], record["right"])}
    if op == "norm":
        nf = session.normalize(record["term"])
        return {"normal_form": pretty_normal_form(nf), "summands": len(nf)}
    if op == "sat":
        return {"satisfiable": session.satisfiable(record["pred"])}
    if op == "empty":
        return {"empty": session.is_empty(record["term"])}
    raise KmtError(f"unknown op {op!r}; expected one of {', '.join(QUERY_OPS)}")


class BatchRunner:
    """Parse, group and execute a JSONL batch on a session pool."""

    def __init__(self, pool=None, default_theory=DEFAULT_THEORY, budget=DEFAULT_BUDGET, jobs=None,
                 cell_search=None):
        # ``cell_search=None`` means "whatever the pool uses" — an explicit
        # value must not be silently ignored when a caller also passes a pool
        # built with a different strategy.
        if pool is not None:
            if cell_search is not None and cell_search != pool.cell_search:
                raise ValueError(
                    f"cell_search={cell_search!r} conflicts with the supplied "
                    f"pool's cell_search={pool.cell_search!r}"
                )
            self.pool = pool
        else:
            self.pool = SessionPool(
                budget=budget,
                cell_search="signature" if cell_search is None else cell_search,
            )
        self.default_theory = default_theory
        self.jobs = jobs

    def run_lines(self, lines, index_offset=0):
        """Execute an iterable of JSONL lines; returns response dicts in order.

        Blank lines and ``#`` comments are skipped (no response record).
        Default ``id``s are 0-based *input* line numbers, so error records can
        be correlated back to the file even when comments/blanks interleave.
        ``index_offset`` shifts the numbering — the serve loop feeds one line
        at a time and passes the running stdin line number so defaults keep
        advancing across calls.
        """
        requests = []   # (index, record) for valid query records
        controls = []   # (index, record) for stats/ping — answered post-batch
        responses = {}  # index -> response dict
        order = []      # indices with responses, in input order
        for index, raw in enumerate(lines, start=index_offset):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            order.append(index)
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError("record must be a JSON object")
                op = record.get("op")
                if op in CONTROL_OPS:
                    controls.append((index, record))
                    continue
                if op not in QUERY_OPS:
                    raise ValueError(
                        f"unknown op {op!r}; expected one of "
                        f"{', '.join(QUERY_OPS + CONTROL_OPS)}"
                    )
                requests.append((index, record))
            except ValueError as error:  # includes json.JSONDecodeError
                responses[index] = {
                    "id": index,
                    "ok": False,
                    "error": f"malformed request: {error}",
                }
        self._execute_grouped(requests, responses)
        # Control responses are built after the queries ran, so a trailing
        # {"op": "stats"} reflects the batch it is part of.
        for index, record in controls:
            responses[index] = self._control_response(record, index)
        return [responses[index] for index in order]

    def _control_response(self, record, index):
        response = {"id": record.get("id", index), "op": record["op"], "ok": True}
        if record["op"] == "stats":
            response["result"] = self.pool.stats()
        else:
            response["result"] = {"pong": True, "theories": self.pool.theories()}
        return response

    def _execute_grouped(self, requests, responses):
        groups = {}  # theory name -> [(index, record)]
        for index, record in requests:
            theory_name = str(record.get("theory", self.default_theory)).lower()
            groups.setdefault(theory_name, []).append((index, record))
        if not groups:
            return
        max_workers = self.jobs if self.jobs else len(groups)
        max_workers = max(1, min(max_workers, len(groups)))
        if max_workers == 1:
            for theory_name, group in groups.items():
                responses.update(self._run_group(theory_name, group))
            return
        with ThreadPoolExecutor(max_workers=max_workers) as executor:
            futures = [
                executor.submit(self._run_group, theory_name, group)
                for theory_name, group in groups.items()
            ]
            for future in futures:
                responses.update(future.result())

    def _run_group(self, theory_name, group):
        out = {}
        try:
            session = self.pool.session(theory_name)
        except KmtError as error:
            for index, record in group:
                out[index] = self._error_response(record, index, theory_name, error)
            return out
        with session.lock:
            for index, record in group:
                base = {
                    "id": record.get("id", index),
                    "op": record["op"],
                    "theory": theory_name,
                }
                try:
                    base["ok"] = True
                    base["result"] = execute_query(session, record)
                except (KmtError, KeyError, TypeError, ValueError) as error:
                    base = self._error_response(record, index, theory_name, error)
                out[index] = base
        return out

    @staticmethod
    def _error_response(record, index, theory_name, error):
        if isinstance(error, KeyError):
            message = f"missing field {error.args[0]!r}"
        else:
            message = str(error)
        return {
            "id": record.get("id", index),
            "op": record.get("op"),
            "theory": theory_name,
            "ok": False,
            "error": message,
        }


def run_batch_lines(lines, default_theory=DEFAULT_THEORY, budget=DEFAULT_BUDGET,
                    jobs=None, pool=None, cell_search=None):
    """Convenience wrapper: run a batch, return ``(responses, pool)``."""
    runner = BatchRunner(pool=pool, default_theory=default_theory, budget=budget, jobs=jobs,
                         cell_search=cell_search)
    return runner.run_lines(lines), runner.pool


def serve(stdin, stdout, default_theory=DEFAULT_THEORY, budget=DEFAULT_BUDGET, pool=None,
          cell_search=None):
    """The ``repro serve`` loop: one JSON request per stdin line, answer per line.

    Runs until EOF or ``{"op": "quit"}``.  The session pool persists across
    requests, so a client issuing overlapping queries over time gets the same
    amortization as a batch.  Returns the number of requests served.

    Default ``id``s follow batch semantics: the 0-based stdin line number
    (blank and comment lines occupy a number but produce no response), so the
    running offset is threaded into each single-line ``run_lines`` call.
    """
    runner = BatchRunner(pool=pool, default_theory=default_theory, budget=budget, jobs=1,
                         cell_search=cell_search)
    served = 0
    for lineno, raw in enumerate(stdin):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            record = json.loads(line)
            if isinstance(record, dict) and record.get("op") == "quit":
                break
        except ValueError:
            pass  # run_lines reports the malformed line as an error record
        for response in runner.run_lines([line], index_offset=lineno):
            stdout.write(json.dumps(response, sort_keys=True) + "\n")
        stdout.flush()
        served += 1
    return served
