"""A small client for the JSONL-over-TCP serve protocol.

One class, three layers of convenience:

* **Line framing** — the protocol is one JSON object per line (see
  :mod:`repro.engine.batch`); :meth:`SocketClient.send_line` /
  :meth:`SocketClient.recv_line` move whole lines with explicit timeouts.
* **Connect / reconnect** — :meth:`SocketClient.connect` is idempotent,
  :meth:`SocketClient.reconnect` tears down and redials; every failure
  surfaces as :class:`ConnectionError` (or ``TimeoutError``), never a
  half-usable stream.
* **Request/response** — :meth:`SocketClient.request` sends one record and
  waits for the response bearing its id (responses may complete out of
  order), and :meth:`SocketClient.ask` runs a whole conversation.

Used by the cluster router (one multiplexed ``SocketClient`` per backend),
by the socket-mode tests, and by ``kmt query --connect HOST:PORT``.
:class:`SocketClientPool` adds bounded connection reuse for callers that
issue independent one-shot requests against one address.
"""

from __future__ import annotations

import json
import socket
import threading

__all__ = ["SocketClient", "SocketClientPool"]


class SocketClient:
    """One framed JSONL connection to a ``kmt serve --socket`` endpoint.

    Not thread-safe as a whole, by design: the router has one thread sending
    and another receiving on the same connection, which is exactly the split
    ``send_line`` / ``recv_line`` supports (each side is single-threaded).
    ``io_timeout`` (seconds, ``None`` = block) applies to every read; writes
    use the same socket timeout.
    """

    def __init__(self, host, port, connect_timeout=5.0, io_timeout=None):
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.io_timeout = io_timeout
        self._sock = None
        self._reader = None

    # -- connection lifecycle ------------------------------------------------

    @property
    def connected(self):
        return self._sock is not None

    def connect(self):
        """Dial the endpoint (idempotent); raises ``ConnectionError``/
        ``TimeoutError`` on failure."""
        if self._sock is not None:
            return self
        try:
            sock = socket.create_connection((self.host, self.port),
                                            timeout=self.connect_timeout)
        except socket.timeout as error:
            raise TimeoutError(
                f"connect to {self.host}:{self.port} timed out "
                f"after {self.connect_timeout}s") from error
        except OSError as error:
            raise ConnectionError(
                f"cannot connect to {self.host}:{self.port}: {error}") from error
        sock.settimeout(self.io_timeout)
        # One JSON line per request either way; batching happens above this
        # layer, so trade Nagle latency away.
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        self._sock = sock
        self._reader = sock.makefile("r", encoding="utf-8", newline="\n")
        return self

    def reconnect(self):
        """Tear the connection down and dial again."""
        self.close()
        return self.connect()

    def close(self):
        sock, self._sock = self._sock, None
        reader, self._reader = self._reader, None
        if sock is not None:
            # Shut the socket down BEFORE touching the reader: a thread
            # blocked in a read holds the buffered reader's lock, and closing
            # that file object would deadlock on it — shutdown() makes the
            # blocked read return EOF first, releasing the lock.
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        if reader is not None:
            try:
                reader.close()
            except (OSError, ValueError):
                pass

    def __enter__(self):
        return self.connect()

    def __exit__(self, *exc_info):
        self.close()

    # -- line framing --------------------------------------------------------

    def send_line(self, line):
        """Send one protocol line (newline appended here).

        A broken connection raises ``ConnectionError`` and leaves the client
        closed, so ``connected`` is an honest health signal.
        """
        if self._sock is None:
            raise ConnectionError(f"not connected to {self.host}:{self.port}")
        try:
            self._sock.sendall((line + "\n").encode("utf-8"))
        except OSError as error:
            self.close()
            raise ConnectionError(
                f"send to {self.host}:{self.port} failed: {error}") from error

    def send_record(self, record):
        self.send_line(json.dumps(record, sort_keys=True))

    def recv_line(self):
        """Receive one line (stripped), or ``None`` on orderly EOF.

        Raises ``TimeoutError`` when ``io_timeout`` expires — the connection
        is closed then, because a line-framed stream abandoned mid-read
        cannot be resynchronized — and ``ConnectionError`` on a reset.
        """
        if self._reader is None:
            raise ConnectionError(f"not connected to {self.host}:{self.port}")
        try:
            line = self._reader.readline()
        except socket.timeout as error:
            self.close()
            raise TimeoutError(
                f"read from {self.host}:{self.port} timed out "
                f"after {self.io_timeout}s") from error
        except (OSError, ValueError) as error:  # ValueError: file closed under us
            self.close()
            raise ConnectionError(
                f"read from {self.host}:{self.port} failed: {error}") from error
        if line == "":
            self.close()
            return None
        return line.rstrip("\n")

    def recv_record(self):
        """Receive and parse one response object, or ``None`` on EOF."""
        line = self.recv_line()
        if line is None:
            return None
        return json.loads(line)

    # -- request/response ----------------------------------------------------

    def request(self, record, timeout=-1):
        """Send one request and wait for *its* response (matched by id).

        The server answers out of order; responses for other ids received
        while waiting are discarded — use this only for strictly sequential
        conversations (the CLI one-shot, tests), not multiplexed traffic.
        ``timeout=-1`` keeps the client's ``io_timeout``; any other value
        replaces it for this call.  EOF before the response raises
        ``ConnectionError``.
        """
        wanted = record.get("id")
        previous = self.io_timeout
        if timeout != -1 and self._sock is not None:
            self.io_timeout = timeout
            self._sock.settimeout(timeout)
        try:
            self.send_record(record)
            while True:
                response = self.recv_record()
                if response is None:
                    raise ConnectionError(
                        f"{self.host}:{self.port} closed before answering "
                        f"id {wanted!r}")
                if wanted is None or response.get("id") == wanted:
                    return response
        finally:
            self.io_timeout = previous
            if self._sock is not None:
                self._sock.settimeout(previous)

    def ask(self, records, quit=True):
        """Send ``records``, then collect every response until EOF.

        Appends ``{"op": "quit"}`` (connection-scoped drain) unless ``quit``
        is false; returns the parsed responses in arrival order.
        """
        for record in records:
            self.send_record(record)
        if quit:
            self.send_record({"op": "quit"})
        responses = []
        while True:
            response = self.recv_record()
            if response is None:
                return responses
            responses.append(response)


class SocketClientPool:
    """A bounded pool of :class:`SocketClient` connections to one address.

    ``acquire`` hands out an idle connection (dialing a new one when none is
    idle and the pool is under ``limit``, blocking otherwise); ``release``
    returns it — or discards it if it broke.  For callers running independent
    sequential conversations; the router does *not* use this (it multiplexes
    one connection per backend instead).
    """

    def __init__(self, host, port, limit=4, connect_timeout=5.0, io_timeout=None):
        self.host = host
        self.port = port
        self.limit = limit
        self.connect_timeout = connect_timeout
        self.io_timeout = io_timeout
        self._idle = []
        self._total = 0
        self._state = threading.Condition()
        self._closed = False

    def acquire(self, timeout=None):
        with self._state:
            while True:
                if self._closed:
                    raise ConnectionError("pool is closed")
                if self._idle:
                    return self._idle.pop()
                if self._total < self.limit:
                    self._total += 1
                    break
                if not self._state.wait(timeout=timeout):
                    raise TimeoutError(
                        f"no free connection to {self.host}:{self.port} "
                        f"after {timeout}s")
        try:
            return SocketClient(self.host, self.port, self.connect_timeout,
                                self.io_timeout).connect()
        except Exception:
            with self._state:
                self._total -= 1
                self._state.notify()
            raise

    def release(self, client):
        with self._state:
            if client.connected and not self._closed:
                self._idle.append(client)
            else:
                client.close()
                self._total -= 1
            self._state.notify()

    def close(self):
        with self._state:
            self._closed = True
            for client in self._idle:
                client.close()
            self._total -= len(self._idle)
            self._idle.clear()
            self._state.notify_all()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
