"""The query engine: a persistent, reusable layer over the one-shot core.

The core (:mod:`repro.core`) faithfully reproduces the paper's pipeline —
``KMT`` facade → ``Normalizer`` → ``EquivalenceChecker`` — but every query
re-normalizes and re-derives automata from scratch.  The engine amortizes
that work across queries:

* :mod:`repro.engine.intern` — stable fingerprint ids for hash-consed terms,
  predicates and normal forms (the cache keys everything else is built on);
* :mod:`repro.engine.cache` — bounded, thread-safe LRU memo tables with
  hit/miss accounting, bundled per concern (normalization, derivatives,
  satisfiability, equivalence verdicts);
* :mod:`repro.engine.session` — :class:`EngineSession`, a long-lived wrapper
  around :class:`~repro.core.kmt.KMT` that threads the caches through the
  normalizer, the cell search and the automata module;
* :mod:`repro.engine.batch` — a JSONL batch protocol plus the blocking
  stdin/stdout serve loop, dispatching work across per-theory sessions on a
  ``concurrent.futures`` pool;
* :mod:`repro.engine.server` — the concurrent query server: bounded intake
  queue with backpressure, per-``(theory, stripe)`` session shards pinned to
  workers (threads in-process, or worker *processes* for true CPU
  parallelism — crashed workers are respawned by a supervisor), per-request
  deadlines with cooperative cancellation, out-of-order or ordered emission,
  and stdio/TCP front ends;
* :mod:`repro.engine.telemetry` — per-request span tracing (``"trace": true``
  phase breakdowns), the counters/gauges/histogram metrics registry with
  Prometheus exposition, and the JSON-lines structured event log.
"""

from repro.engine.cache import CacheStats, EngineCaches, LRUCache
from repro.engine.intern import fingerprint, fingerprint_normal_form
from repro.engine.telemetry import (
    JsonLinesFormatter,
    MetricsExporter,
    MetricsRegistry,
    Trace,
    configure_logging,
    current_trace,
    log_event,
    merge_metrics,
    render_prometheus,
)
from repro.engine.session import EngineSession
from repro.engine.batch import BatchRunner, SessionPool, run_batch_lines, run_query, serve
from repro.engine.server import (
    ProcessExecutionBackend,
    QueryServer,
    ResponseSink,
    ShardedSessionPool,
    SocketServer,
    ThreadExecutionBackend,
    serve_stdio,
)

__all__ = [
    "BatchRunner",
    "CacheStats",
    "EngineCaches",
    "EngineSession",
    "JsonLinesFormatter",
    "LRUCache",
    "MetricsExporter",
    "MetricsRegistry",
    "ProcessExecutionBackend",
    "QueryServer",
    "ResponseSink",
    "SessionPool",
    "ShardedSessionPool",
    "SocketServer",
    "ThreadExecutionBackend",
    "Trace",
    "configure_logging",
    "current_trace",
    "fingerprint",
    "fingerprint_normal_form",
    "log_event",
    "merge_metrics",
    "render_prometheus",
    "run_batch_lines",
    "run_query",
    "serve",
    "serve_stdio",
]
