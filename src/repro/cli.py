"""Command-line interface: the paper's term-partitioning tool plus utilities.

Usage (installed as the ``kmt`` console script, also ``python -m repro``)::

    kmt --theory incnat equiv  "inc(x)*; x > 10" "inc(x)*; inc(x)*; x > 10"
    kmt --theory incnat incl   "inc(x)" "inc(x) + inc(y)"
    kmt --theory incnat member "(inc(x))*; x > 1" "inc(x)" "inc(x)"
    kmt --theory bitvec norm   "x = F; (flip x; flip x)*"
    kmt --theory incnat sat    "x > 5; ~(x > 3)"
    kmt --theory incnat classes terms.txt        # one term per line, '#' comments
    kmt --theory incnat verify "i < 2" @prog.while "j > 5"
    kmt --theory incnat prog-equiv "skip;" "if (i > 0) {} else {}"
    kmt --theory incnat dead-code @prog.while    # per-statement reachability
    kmt batch   queries.jsonl                    # JSONL batch over engine sessions
    kmt serve                                    # stdin/stdout JSONL serve loop

``classes`` mirrors the paper's command-line tool: given KMT terms in some
supported theory, it partitions them into equivalence classes.  ``batch`` and
``serve`` run the :mod:`repro.engine` front end: persistent per-theory
sessions with memoized normalization/decision caches (see the module docs of
:mod:`repro.engine.batch` for the request/response schema).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core.kmt import KMT
from repro.core.pretty import pretty_normal_form
from repro.theories import build_theory  # noqa: F401  (re-exported; tests import it here)
from repro.utils.errors import KmtError


def _make_kmt(args):
    return KMT(build_theory(args.theory), budget=args.budget, cell_search=args.cell_search,
               walk_kernel=args.walk_kernel)


def cmd_equiv(args):
    kmt = _make_kmt(args)
    started = time.perf_counter()
    result = kmt.check_equivalent(args.left, args.right)
    elapsed = time.perf_counter() - started
    verdict = "equivalent" if result.equivalent else "NOT equivalent"
    detail = f"{elapsed:.3f}s, {result.cells_explored} cells explored"
    if args.cell_search == "signature":
        detail += f", {result.signatures_explored} signatures"
    print(f"{verdict}  ({detail})")
    if result.counterexample is not None:
        print("counterexample:", result.counterexample.describe())
    return 0 if result.equivalent else 1


def cmd_incl(args):
    kmt = _make_kmt(args)
    started = time.perf_counter()
    result = kmt.check_inclusion(args.left, args.right)
    elapsed = time.perf_counter() - started
    verdict = "included" if result.includes else "NOT included"
    detail = f"{elapsed:.3f}s, {result.cells_explored} cells explored"
    if args.cell_search == "signature":
        detail += f", {result.signatures_explored} signatures"
    print(f"{verdict}  ({detail})")
    if result.counterexample is not None:
        cex = result.counterexample
        print("witness:", cex.describe())
    return 0 if result.includes else 1


def cmd_member(args):
    kmt = _make_kmt(args)
    started = time.perf_counter()
    verdict = kmt.member(args.term, args.word)
    elapsed = time.perf_counter() - started
    print(f"{'member' if verdict else 'NOT a member'}  ({elapsed:.3f}s)")
    return 0 if verdict else 1


def cmd_norm(args):
    kmt = _make_kmt(args)
    nf, stats = kmt.normalize_with_stats(kmt.parse(args.term))
    print(pretty_normal_form(nf))
    print(
        f"# {len(nf)} summands, {stats.steps} pushback steps, "
        f"{stats.prim_pushbacks} primitive pushbacks",
        file=sys.stderr,
    )
    return 0


def cmd_sat(args):
    kmt = _make_kmt(args)
    satisfiable = kmt.satisfiable(args.pred)
    print("satisfiable" if satisfiable else "unsatisfiable")
    return 0 if satisfiable else 1


def cmd_classes(args):
    kmt = _make_kmt(args)
    lines = []
    with open(args.file, "r", encoding="utf-8") as handle:
        for raw in handle:
            line = raw.strip()
            if line and not line.startswith("#"):
                lines.append(line)
    terms = [kmt.parse(line) for line in lines]
    classes = kmt.partition(terms)
    for class_index, members in enumerate(classes):
        print(f"class {class_index}:")
        for member in members:
            print(f"  {lines[member]}")
    return 0


def _read_program(arg):
    """A program argument: literal While source, or ``@path`` to read a file."""
    if arg.startswith("@"):
        with open(arg[1:], "r", encoding="utf-8") as handle:
            return handle.read()
    return arg


def _make_session(args):
    """An :class:`EngineSession` for the program-analysis verbs.

    Unlike the bare :class:`KMT` facade, a session keeps its ``prog``, norm
    and aut caches warm across the many emptiness queries a single
    ``dead-code`` invocation issues.
    """
    from repro.engine.session import EngineSession

    return EngineSession(build_theory(args.theory), budget=args.budget,
                         cell_search=args.cell_search, walk_kernel=args.walk_kernel)


def cmd_verify(args):
    session = _make_session(args)
    started = time.perf_counter()
    result = session.verify(args.pre, _read_program(args.program), args.post)
    elapsed = time.perf_counter() - started
    if result["holds"]:
        print(f"valid  ({elapsed:.3f}s, {result['cells_explored']} cells explored)")
        return 0
    print(f"INVALID  ({elapsed:.3f}s, {result['cells_explored']} cells explored)")
    if "counterexample" in result:
        print("counterexample:", result["counterexample"])
    if result.get("witness_trace"):
        print("witness trace:", " ; ".join(result["witness_trace"]))
    return 1


def cmd_prog_equiv(args):
    session = _make_session(args)
    started = time.perf_counter()
    result = session.prog_equiv(_read_program(args.left), _read_program(args.right))
    elapsed = time.perf_counter() - started
    verdict = "equivalent" if result["equivalent"] else "NOT equivalent"
    print(f"{verdict}  ({elapsed:.3f}s, {result['cells_explored']} cells explored)")
    if "counterexample" in result:
        print("counterexample:", result["counterexample"])
    return 0 if result["equivalent"] else 1


def cmd_dead_code(args):
    from repro.utils.errors import caret_frame

    session = _make_session(args)
    program = _read_program(args.program)
    started = time.perf_counter()
    result = session.dead_code(program)
    elapsed = time.perf_counter() - started
    for entry in result["statements"]:
        marker = "DEAD" if entry["dead"] else "  ok"
        span = entry.get("span")
        loc = f"{span['line']}:{span['column']}" if span else "-"
        print(f"{marker}  {loc:>6}  {entry['text']}")
        if entry["dead"] and span is not None:
            print(caret_frame(program, span["start"], prefix="      | "))
        reason = entry.get("reason")
        if reason is not None:
            if reason["kind"] == "guard":
                polarity = "~" if reason["negated"] else ""
                where = reason.get("span")
                at = f" (at {where['line']}:{where['column']})" if where else ""
                print(f"      reason: guard {polarity}({reason['guard']}){at}")
            else:
                where = reason.get("span")
                at = f" (at {where['line']}:{where['column']})" if where else ""
                detail = f" {reason['guard']}" if "guard" in reason else ""
                print(f"      reason: {reason['kind']}{detail}{at}")
    print(f"# {result['dead']} dead of {result['total']} statements ({elapsed:.3f}s)",
          file=sys.stderr)
    return 1 if result["dead"] else 0


def cmd_run(args):
    kmt = _make_kmt(args)
    traces = kmt.run(args.term)
    if not traces:
        print("no traces (the program rejects the initial state)")
        return 1
    for trace in sorted(traces, key=lambda t: (len(t), repr(t))):
        actions = " ; ".join(str(entry.action) for entry in trace if entry.action is not None)
        print(f"[{len(trace) - 1} steps] {actions or '<no actions>'}  ->  {trace.last_state!r}")
    return 0


def _configure_observability(args):
    """Point the ``kmt.*`` JSON-lines log at stderr or ``--log-file``.

    Logging stays silent unless one of the observability flags is given;
    ``--slow-query-ms`` alone implies logging (its events must land
    somewhere), at the default ``info`` level on stderr.
    """
    if args.log_level is None and args.log_file is None \
            and getattr(args, "slow_query_ms", None) is None:
        return
    from repro.engine.telemetry import configure_logging

    configure_logging(args.log_level or "info", args.log_file)


def cmd_batch(args):
    import contextlib
    import json

    from repro.engine.batch import BatchRunner

    _configure_observability(args)
    runner = BatchRunner(default_theory=args.theory, budget=args.budget, jobs=args.jobs,
                         cell_search=args.cell_search, slow_query_ms=args.slow_query_ms,
                         walk_kernel=args.walk_kernel)
    # The input is streamed into the runner one line at a time instead of
    # readlines() — no duplicate raw-text buffer for `kmt batch -` on a large
    # pipe.  (Parsed requests and responses are still materialized: the batch
    # contract answers strictly in input order after executing everything.)
    if args.file == "-":
        source = contextlib.nullcontext(sys.stdin)
    else:
        try:
            source = open(args.file, "r", encoding="utf-8")
        except OSError as error:
            print(f"error: cannot read batch file: {error}", file=sys.stderr)
            return 2
    started = time.perf_counter()
    with source as lines:
        responses = runner.run_lines(lines)
    elapsed = time.perf_counter() - started
    for response in responses:
        print(json.dumps(response, sort_keys=True))
    failures = sum(1 for response in responses if not response.get("ok"))
    print(
        f"# {len(responses)} responses ({failures} errors) in {elapsed:.3f}s",
        file=sys.stderr,
    )
    if args.stats:
        print(json.dumps(runner.pool.stats(), indent=2, sort_keys=True), file=sys.stderr)
    return 0 if failures == 0 else 1


def _parse_host_port(text, flag="--socket"):
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise KmtError(f"{flag} expects HOST:PORT, got {text!r}")
    return host, int(port)


def cmd_serve(args):
    import signal
    import threading

    _configure_observability(args)
    if args.checkpoint_interval is not None and not args.snapshot:
        print("error: --checkpoint-interval requires --snapshot PATH", file=sys.stderr)
        return 2

    def _make_manager(exporter, importer, metrics=None):
        if not args.snapshot:
            return None
        from repro.engine.persist import CheckpointManager, SnapshotStore

        return CheckpointManager(
            SnapshotStore(args.snapshot), exporter, importer=importer,
            interval=args.checkpoint_interval, metrics=metrics,
        )

    if args.legacy:
        if args.metrics:
            print("error: --metrics requires the concurrent server (drop --legacy)",
                  file=sys.stderr)
            return 2
        if args.theory_factory:
            print("error: --theory-factory requires the concurrent server "
                  "(drop --legacy)", file=sys.stderr)
            return 2
        from repro.engine.batch import SessionPool, serve

        pool = manager = None
        if args.snapshot:
            pool = SessionPool(
                budget=args.budget,
                cell_search=args.cell_search or "signature",
                walk_kernel=args.walk_kernel or "flat",
            )
            manager = _make_manager(pool.export_snapshot, pool.import_snapshot)
            manager.load()
            manager.start()
        try:
            served = serve(sys.stdin, sys.stdout, default_theory=args.theory,
                           budget=args.budget, cell_search=args.cell_search,
                           slow_query_ms=args.slow_query_ms, walk_kernel=args.walk_kernel,
                           pool=pool, snapshot_manager=manager)
        finally:
            if manager is not None:
                manager.close()
        print(f"# served {served} requests", file=sys.stderr)
        return 0

    from repro.engine.server import QueryServer, SocketServer, serve_stdio

    server = QueryServer(
        workers=args.workers, stripes=args.stripes, queue_limit=args.queue_limit,
        default_theory=args.theory, budget=args.budget, cell_search=args.cell_search,
        backend=args.backend, slow_query_ms=args.slow_query_ms,
        walk_kernel=args.walk_kernel, theory_factory_spec=args.theory_factory,
    )
    manager = _make_manager(server.export_snapshot, server.import_snapshot,
                            metrics=server.metrics)
    server.snapshot_manager = manager

    exporter = None
    if args.metrics:
        from repro.engine.telemetry import MetricsExporter

        metrics_host, metrics_port = _parse_host_port(args.metrics, flag="--metrics")
        exporter = MetricsExporter(server.metrics_prometheus,
                                   host=metrics_host, port=metrics_port)
        exporter.start()
        print(f"# metrics on http://{exporter.host}:{exporter.port}/metrics",
              file=sys.stderr)

    class _Terminated(Exception):
        pass

    def _on_sigterm(_signum, _frame):
        raise _Terminated()

    # SIGTERM drains gracefully: in-flight requests answer before exit.  Only
    # installable from the main thread (tests drive cmd_serve from workers).
    if threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGTERM, _on_sigterm)

    if manager is not None:
        # Boot order matters: workers must be up (process backend) before the
        # snapshot import crosses the pipes.  A missing/invalid snapshot is a
        # logged cold start, never a startup failure.
        server.start()
        server.wait_ready(timeout=120)
        counts = manager.load()
        if counts is not None:
            total = sum(sum(tables.values()) for tables in counts.values())
            print(f"# warm start: {total} cache entries from {args.snapshot}",
                  file=sys.stderr)
        manager.start()

    if args.socket:
        host, port = _parse_host_port(args.socket)
        socket_server = SocketServer(host=host, port=port, server=server, ordered=args.ordered)
        socket_server.start()
        print(f"# listening on {host}:{socket_server.port} "
              f"({args.workers} {args.backend} workers, {server.stripes} stripes)",
              file=sys.stderr)
        try:
            threading.Event().wait()  # serve until SIGTERM / SIGINT
        except (_Terminated, KeyboardInterrupt):
            pass
        finally:
            if manager is not None:
                # Final checkpoint needs live workers: drain in-flight work,
                # save, then tear the backend down.
                server.drain()
                manager.close()
            socket_server.close(drain=True)
            if exporter is not None:
                exporter.close()
            print("# drained and stopped", file=sys.stderr)
        return 0

    try:
        served = serve_stdio(sys.stdin, sys.stdout, ordered=args.ordered, server=server)
    except _Terminated:
        served = None
    finally:
        if manager is not None:
            server.wait_idle(timeout=60)
            manager.close()
        server.shutdown(drain=True)
        if exporter is not None:
            exporter.close()
    if served is not None:
        print(f"# served {served} requests", file=sys.stderr)
    else:
        print("# terminated; in-flight requests drained", file=sys.stderr)
    return 0


def cmd_route(args):
    import signal
    import threading

    _configure_observability(args)
    from repro.engine.router import Router
    from repro.engine.server import SocketServer

    host, port = _parse_host_port(args.socket)
    router = Router(
        args.backends, queue_limit=args.queue_limit, ring_replicas=args.ring_replicas,
        max_retries=args.max_retries, probe_interval=args.probe_interval,
        probe_timeout=args.probe_timeout, rate_limit=args.rate_limit,
        rate_burst=args.rate_burst,
    )

    exporter = None
    if args.metrics:
        from repro.engine.telemetry import MetricsExporter

        metrics_host, metrics_port = _parse_host_port(args.metrics, flag="--metrics")
        exporter = MetricsExporter(router.metrics_prometheus,
                                   host=metrics_host, port=metrics_port)
        exporter.start()
        print(f"# metrics on http://{exporter.host}:{exporter.port}/metrics",
              file=sys.stderr)

    class _Terminated(Exception):
        pass

    def _on_sigterm(_signum, _frame):
        raise _Terminated()

    if threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGTERM, _on_sigterm)

    socket_server = SocketServer(host=host, port=port, server=router,
                                 ordered=args.ordered)
    socket_server.start()
    # Backends that are already up join the ring during start(); late ones
    # are picked up by the probe loop — routing with a partial ring is fine.
    router.wait_all_up(timeout=args.wait_backends)
    up = len(router.ring)
    print(f"# routing on {host}:{socket_server.port} "
          f"({up}/{len(args.backends)} backends up, "
          f"queue limit {args.queue_limit})", file=sys.stderr)
    try:
        threading.Event().wait()  # route until SIGTERM / SIGINT
    except (_Terminated, KeyboardInterrupt):
        pass
    finally:
        socket_server.close(drain=True)
        if exporter is not None:
            exporter.close()
        print("# drained and stopped", file=sys.stderr)
    return 0


def cmd_query(args):
    import json

    from repro.engine.client import SocketClient

    host, port = _parse_host_port(args.connect, flag="--connect")
    if args.request == "-":
        raw = sys.stdin.readline()
    elif args.request.startswith("@"):
        with open(args.request[1:], "r", encoding="utf-8") as handle:
            raw = handle.read()
    else:
        raw = args.request
    try:
        record = json.loads(raw)
    except ValueError as error:
        raise KmtError(f"request must be a JSON object: {error}")
    if not isinstance(record, dict):
        raise KmtError(f"request must be a JSON object, got {type(record).__name__}")
    record.setdefault("id", "q0")
    try:
        with SocketClient(host, port, connect_timeout=args.timeout,
                          io_timeout=args.timeout) as client:
            response = client.request(record, timeout=args.timeout)
    except (ConnectionError, TimeoutError) as error:
        raise KmtError(str(error))
    print(json.dumps(response, sort_keys=True))
    return 0 if response.get("ok") else 1


def make_arg_parser():
    parser = argparse.ArgumentParser(
        prog="kmt",
        description="Kleene algebra modulo theories: equivalence, normalization, satisfiability.",
    )
    parser.add_argument(
        "--theory",
        default="incnat",
        help=(
            "theory preset: incnat, bitvec, netkat, product, ltlf-nat, ltlf-bool, "
            "temporal-netkat, sets, maps"
        ),
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=500_000,
        help="pushback step budget before normalization gives up",
    )
    parser.add_argument(
        "--cell-search",
        choices=("signature", "enumerate"),
        default="signature",
        help=(
            "decision-procedure cell strategy: solver-guided signature search "
            "(default) or the explicit cell enumerator (ablation baseline)"
        ),
    )
    parser.add_argument(
        "--walk-kernel",
        choices=("flat", "legacy"),
        default="flat",
        help=(
            "product-walk kernel over compiled automata: batched flat-table "
            "kernels with a canonical-table equality fast path (default; "
            "vectorized when numpy is importable) or the tuple-based "
            "per-pair walk (ablation/differential oracle)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    equiv = sub.add_parser("equiv", help="decide equivalence of two terms")
    equiv.add_argument("left")
    equiv.add_argument("right")
    equiv.set_defaults(func=cmd_equiv)

    incl = sub.add_parser(
        "incl",
        help=(
            "decide inclusion left <= right (per-cell compiled-automaton "
            "containment, with a shortest witness word on failure)"
        ),
    )
    incl.add_argument("left")
    incl.add_argument("right")
    incl.set_defaults(func=cmd_incl)

    member = sub.add_parser(
        "member",
        help=(
            "decide whether a word of primitive actions is a possible action "
            "sequence of a term"
        ),
    )
    member.add_argument("term")
    member.add_argument(
        "word", nargs="*",
        help="primitive actions, one per argument (or ';'-separated in one)",
    )
    member.set_defaults(func=cmd_member)

    norm = sub.add_parser("norm", help="print the normal form of a term")
    norm.add_argument("term")
    norm.set_defaults(func=cmd_norm)

    sat = sub.add_parser("sat", help="decide satisfiability of a predicate")
    sat.add_argument("pred")
    sat.set_defaults(func=cmd_sat)

    classes = sub.add_parser("classes", help="partition a file of terms into equivalence classes")
    classes.add_argument("file")
    classes.set_defaults(func=cmd_classes)

    run = sub.add_parser("run", help="run a term from the theory's initial state")
    run.add_argument("term")
    run.set_defaults(func=cmd_run)

    verify = sub.add_parser(
        "verify",
        help=(
            "decide the Hoare triple {pre} program {post} for a While program "
            "(counterexample cell + witness trace on failure)"
        ),
    )
    verify.add_argument("pre", help="precondition (a test in the theory's syntax)")
    verify.add_argument("program", help="While program source, or @path to a file")
    verify.add_argument("post", help="postcondition (a test in the theory's syntax)")
    verify.set_defaults(func=cmd_verify)

    prog_equiv = sub.add_parser(
        "prog-equiv",
        help="decide equivalence of two While programs",
    )
    prog_equiv.add_argument("left", help="While program source, or @path to a file")
    prog_equiv.add_argument("right", help="While program source, or @path to a file")
    prog_equiv.set_defaults(func=cmd_prog_equiv)

    dead_code = sub.add_parser(
        "dead-code",
        help=(
            "report unreachable statements of a While program with exact "
            "source spans and the controlling reason guard"
        ),
    )
    dead_code.add_argument("program", help="While program source, or @path to a file")
    dead_code.set_defaults(func=cmd_dead_code)

    batch = sub.add_parser(
        "batch", help="run a JSONL batch of queries over cached engine sessions"
    )
    batch.add_argument("file", help="JSONL file of requests, or '-' for stdin")
    batch.add_argument(
        "--jobs", type=int, default=None,
        help="worker threads (default: one per distinct theory in the batch)",
    )
    batch.add_argument(
        "--stats", action="store_true", help="dump cache hit/miss stats to stderr"
    )
    _add_observability_flags(batch)
    batch.set_defaults(func=cmd_batch)

    serve = sub.add_parser(
        "serve",
        help=(
            "concurrent JSONL query server: stdin/stdout by default, TCP with "
            "--socket; see the README's server section for the protocol"
        ),
    )
    serve.add_argument(
        "--workers", type=int, default=4,
        help="workers executing queries (default: 4)",
    )
    serve.add_argument(
        "--backend", choices=("thread", "process"), default="thread",
        help=(
            "execution backend: worker threads in this process (default; best "
            "when queries wait on external oracles or I/O) or worker processes "
            "(true parallelism for CPU-bound queries on multi-core machines); "
            "ignored under --legacy"
        ),
    )
    serve.add_argument(
        "--stripes", type=int, default=None,
        help="sessions per hot theory (default: one per worker)",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=128,
        help="max in-flight requests before intake blocks (backpressure)",
    )
    serve.add_argument(
        "--ordered", action="store_true",
        help="emit responses in submission order instead of completion order",
    )
    serve.add_argument(
        "--socket", metavar="HOST:PORT", default=None,
        help="serve multiple clients over TCP instead of stdin/stdout (port 0 = ephemeral)",
    )
    serve.add_argument(
        "--legacy", action="store_true",
        help="use the blocking single-threaded serve loop instead of the concurrent server",
    )
    serve.add_argument(
        "--metrics", metavar="HOST:PORT", default=None,
        help=(
            "expose a Prometheus text endpoint at http://HOST:PORT/metrics "
            "(port 0 = ephemeral; concurrent server only)"
        ),
    )
    serve.add_argument(
        "--snapshot", metavar="PATH", default=None,
        help=(
            "persistent snapshot file: warm-start the caches from PATH at boot "
            "(missing or stale snapshots are a logged cold start) and write a "
            "final checkpoint there on clean shutdown"
        ),
    )
    serve.add_argument(
        "--theory-factory", metavar="MODULE:ATTR", default=None,
        help=(
            "theory-factory spec resolved inside each worker (testing and "
            "benchmark hook — e.g. repro.engine.testing:oracle_latency_factory "
            "reads KMT_TEST_ORACLE_* from the environment); concurrent server only"
        ),
    )
    serve.add_argument(
        "--checkpoint-interval", type=float, default=None, metavar="SECS",
        help=(
            "also checkpoint the caches to --snapshot every SECS seconds in "
            "the background (default: only the final checkpoint on shutdown)"
        ),
    )
    _add_observability_flags(serve)
    serve.set_defaults(func=cmd_serve)

    route = sub.add_parser(
        "route",
        help=(
            "consistent-hash router over N `kmt serve --socket` backends: "
            "same JSONL protocol, sticky cache affinity, failover, per-client "
            "rate limits and a priority field; see the README's Cluster section"
        ),
    )
    route.add_argument(
        "--socket", metavar="HOST:PORT", required=True,
        help="listen address for clients (port 0 = ephemeral)",
    )
    route.add_argument(
        "--backend", metavar="HOST:PORT", action="append", required=True,
        dest="backends",
        help="a backend server address; repeat once per backend",
    )
    route.add_argument(
        "--queue-limit", type=int, default=256,
        help="max in-flight requests across all backends before intake blocks",
    )
    route.add_argument(
        "--ordered", action="store_true",
        help="emit responses in submission order instead of completion order",
    )
    route.add_argument(
        "--ring-replicas", type=int, default=64,
        help="virtual nodes per backend on the hash ring (default: 64)",
    )
    route.add_argument(
        "--max-retries", type=int, default=2,
        help="replicas to retry an in-flight request on after its backend dies",
    )
    route.add_argument(
        "--probe-interval", type=float, default=1.0, metavar="SECS",
        help="seconds between backend health probes / rejoin attempts",
    )
    route.add_argument(
        "--probe-timeout", type=float, default=5.0, metavar="SECS",
        help="seconds before an unanswered probe ejects a backend",
    )
    route.add_argument(
        "--rate-limit", type=float, default=None, metavar="QPS",
        help=(
            "per-client token-bucket admission limit in queries/second "
            "(default: off); excess answers a rate_limited error"
        ),
    )
    route.add_argument(
        "--rate-burst", type=float, default=None, metavar="N",
        help="token-bucket burst capacity (default: 2x the rate)",
    )
    route.add_argument(
        "--wait-backends", type=float, default=10.0, metavar="SECS",
        help="seconds to wait for all backends before serving anyway",
    )
    route.add_argument(
        "--metrics", metavar="HOST:PORT", default=None,
        help="expose the router's Prometheus endpoint at http://HOST:PORT/metrics",
    )
    _add_observability_flags(route)
    route.set_defaults(func=cmd_route)

    query = sub.add_parser(
        "query",
        help=(
            "send one JSONL request to a running server or router over TCP "
            "and print the response"
        ),
    )
    query.add_argument(
        "--connect", metavar="HOST:PORT", required=True,
        help="address of a `kmt serve --socket` server or `kmt route` router",
    )
    query.add_argument(
        "request", nargs="?", default="-",
        help="JSON request object, @path to a file, or '-' for stdin (default)",
    )
    query.add_argument(
        "--timeout", type=float, default=30.0, metavar="SECS",
        help="connect/read timeout in seconds (default: 30)",
    )
    query.set_defaults(func=cmd_query)
    return parser


def _add_observability_flags(sub):
    sub.add_argument(
        "--log-level", choices=("debug", "info", "warning", "error"), default=None,
        help="enable the JSON-lines event log at this level (default: off)",
    )
    sub.add_argument(
        "--log-file", metavar="PATH", default=None,
        help="write the event log to PATH instead of stderr (implies --log-level info)",
    )
    sub.add_argument(
        "--slow-query-ms", type=float, default=None, metavar="N",
        help=(
            "log a slow_query event with the full phase breakdown for every "
            "request slower than N ms end-to-end (implies logging)"
        ),
    )


def main(argv=None):
    parser = make_arg_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KmtError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
