"""Command-line interface: the paper's term-partitioning tool plus utilities.

Usage (installed as the ``kmt`` console script, also ``python -m repro``)::

    kmt equiv   --theory incnat "inc(x)*; x > 10" "inc(x)*; inc(x)*; x > 10"
    kmt norm    --theory bitvec "x = F; (flip x; flip x)*"
    kmt sat     --theory incnat "x > 5; ~(x > 3)"
    kmt classes --theory incnat terms.txt        # one term per line, '#' comments

``classes`` mirrors the paper's command-line tool: given KMT terms in some
supported theory, it partitions them into equivalence classes.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core.kmt import KMT
from repro.core.pretty import pretty_normal_form
from repro.theories.bitvec import BitVecTheory
from repro.theories.incnat import IncNatTheory
from repro.theories.ltlf import LtlfTheory
from repro.theories.netkat import NetKatTheory
from repro.theories.product import ProductTheory
from repro.theories.temporal_netkat import temporal_netkat
from repro.utils.errors import KmtError


def build_theory(name):
    """Construct one of the named theory presets used by the CLI."""
    name = name.lower()
    if name in ("incnat", "nat", "n"):
        return IncNatTheory()
    if name in ("bitvec", "bool", "b"):
        return BitVecTheory()
    if name in ("netkat",):
        return NetKatTheory()
    if name in ("product", "natbool", "nxb"):
        return ProductTheory(IncNatTheory(), BitVecTheory())
    if name in ("ltlf-nat", "ltlf"):
        return LtlfTheory(IncNatTheory())
    if name in ("ltlf-bool",):
        return LtlfTheory(BitVecTheory())
    if name in ("temporal-netkat", "tnetkat"):
        return temporal_netkat()
    raise KmtError(
        f"unknown theory {name!r}; available: incnat, bitvec, netkat, product, "
        "ltlf-nat, ltlf-bool, temporal-netkat"
    )


def _make_kmt(args):
    return KMT(build_theory(args.theory), budget=args.budget)


def cmd_equiv(args):
    kmt = _make_kmt(args)
    started = time.perf_counter()
    result = kmt.check_equivalent(args.left, args.right)
    elapsed = time.perf_counter() - started
    verdict = "equivalent" if result.equivalent else "NOT equivalent"
    print(f"{verdict}  ({elapsed:.3f}s, {result.cells_explored} cells explored)")
    if result.counterexample is not None:
        print("counterexample:", result.counterexample.describe())
    return 0 if result.equivalent else 1


def cmd_norm(args):
    kmt = _make_kmt(args)
    nf, stats = kmt.normalize_with_stats(kmt.parse(args.term))
    print(pretty_normal_form(nf))
    print(
        f"# {len(nf)} summands, {stats.steps} pushback steps, "
        f"{stats.prim_pushbacks} primitive pushbacks",
        file=sys.stderr,
    )
    return 0


def cmd_sat(args):
    kmt = _make_kmt(args)
    satisfiable = kmt.satisfiable(args.pred)
    print("satisfiable" if satisfiable else "unsatisfiable")
    return 0 if satisfiable else 1


def cmd_classes(args):
    kmt = _make_kmt(args)
    lines = []
    with open(args.file, "r", encoding="utf-8") as handle:
        for raw in handle:
            line = raw.strip()
            if line and not line.startswith("#"):
                lines.append(line)
    terms = [kmt.parse(line) for line in lines]
    classes = kmt.partition(terms)
    for class_index, members in enumerate(classes):
        print(f"class {class_index}:")
        for member in members:
            print(f"  {lines[member]}")
    return 0


def cmd_run(args):
    kmt = _make_kmt(args)
    traces = kmt.run(args.term)
    if not traces:
        print("no traces (the program rejects the initial state)")
        return 1
    for trace in sorted(traces, key=lambda t: (len(t), repr(t))):
        actions = " ; ".join(str(entry.action) for entry in trace if entry.action is not None)
        print(f"[{len(trace) - 1} steps] {actions or '<no actions>'}  ->  {trace.last_state!r}")
    return 0


def make_arg_parser():
    parser = argparse.ArgumentParser(
        prog="kmt",
        description="Kleene algebra modulo theories: equivalence, normalization, satisfiability.",
    )
    parser.add_argument(
        "--theory",
        default="incnat",
        help="theory preset: incnat, bitvec, netkat, product, ltlf-nat, ltlf-bool, temporal-netkat",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=500_000,
        help="pushback step budget before normalization gives up",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    equiv = sub.add_parser("equiv", help="decide equivalence of two terms")
    equiv.add_argument("left")
    equiv.add_argument("right")
    equiv.set_defaults(func=cmd_equiv)

    norm = sub.add_parser("norm", help="print the normal form of a term")
    norm.add_argument("term")
    norm.set_defaults(func=cmd_norm)

    sat = sub.add_parser("sat", help="decide satisfiability of a predicate")
    sat.add_argument("pred")
    sat.set_defaults(func=cmd_sat)

    classes = sub.add_parser("classes", help="partition a file of terms into equivalence classes")
    classes.add_argument("file")
    classes.set_defaults(func=cmd_classes)

    run = sub.add_parser("run", help="run a term from the theory's initial state")
    run.add_argument("term")
    run.set_defaults(func=cmd_run)
    return parser


def main(argv=None):
    parser = make_arg_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KmtError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
