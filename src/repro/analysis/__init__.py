"""Program-analysis layers built on top of the derived KATs.

KAT subsumes propositional Hoare logic (Kozen 1997/2000): a partial-correctness
triple ``{b} p {c}`` is exactly the equation ``b;p;~c == 0``.  Because KMT
gives us *decidable* concrete KATs, these encodings become push-button program
analyses; this package hosts them.
"""

from repro.analysis.hoare import HoareLogic, HoareTriple
from repro.analysis.checks import compiled_program, dead_code, prog_equiv, verify

__all__ = [
    "HoareLogic",
    "HoareTriple",
    "compiled_program",
    "dead_code",
    "prog_equiv",
    "verify",
]
