"""Propositional Hoare logic on top of a derived KMT.

Kozen showed that KAT subsumes propositional Hoare logic: the partial
correctness assertion ``{b} p {c}`` ("every terminating run of ``p`` from a
state satisfying ``b`` ends in a state satisfying ``c``") is equivalent to the
KAT equation ``b ; p ; ~c == 0``.  The paper leans on this connection when it
verifies the Fig. 1 programs by checking that their trailing asserts are
redundant; this module makes the encoding explicit and packages the usual
Hoare rules as *derived*, checkable facts rather than axioms.

Because the underlying KMT equivalence is decidable, `HoareLogic.holds` is a
complete decision procedure for triples over the client theory's tests, and
`HoareLogic.explain` produces a counterexample cell when a triple fails.
"""

from __future__ import annotations

from repro.core import terms as T


class HoareTriple:
    """A partial-correctness triple ``{pre} program {post}``."""

    __slots__ = ("pre", "program", "post")

    def __init__(self, pre, program, post):
        if not isinstance(pre, T.Pred) or not isinstance(post, T.Pred):
            raise TypeError("pre and post conditions must be predicates")
        if not isinstance(program, T.Term):
            raise TypeError("the program must be a term")
        self.pre = pre
        self.program = program
        self.post = post

    def encoding(self):
        """The KAT term whose emptiness is equivalent to the triple's validity."""
        return T.tseq(
            T.ttest(self.pre), T.tseq(self.program, T.ttest(T.pnot(self.post)))
        )

    def __repr__(self):
        return (
            "{" + self.pre.pretty() + "} "
            + self.program.pretty()
            + " {" + self.post.pretty() + "}"
        )


class HoareLogic:
    """Hoare-style reasoning over one KMT instance."""

    def __init__(self, kmt):
        self.kmt = kmt

    # ------------------------------------------------------------------
    # validity
    # ------------------------------------------------------------------
    def triple(self, pre, program, post):
        """Build a :class:`HoareTriple`, parsing any string arguments."""
        if isinstance(pre, str):
            pre = self.kmt.parse_pred(pre)
        if isinstance(post, str):
            post = self.kmt.parse_pred(post)
        if isinstance(program, str):
            program = self.kmt.parse(program)
        return HoareTriple(pre, program, post)

    def holds(self, pre, program, post):
        """Decide ``{pre} program {post}`` (partial correctness)."""
        return self.kmt.is_empty(self.triple(pre, program, post).encoding())

    def explain(self, pre, program, post):
        """Return ``None`` if the triple holds, else a counterexample description.

        The counterexample is the equivalence-checker's distinguishing cell for
        ``b;p;~c`` versus ``0``: a satisfiable combination of primitive tests
        under which the program can run and end in a ``~post`` state.
        """
        encoding = self.triple(pre, program, post).encoding()
        result = self.kmt.check_equivalent(encoding, T.tzero())
        if result.equivalent:
            return None
        return result.counterexample

    # ------------------------------------------------------------------
    # derived rules, as checkable facts
    # ------------------------------------------------------------------
    def skip_rule(self, pre):
        """``{b} skip {b}`` always holds."""
        return self.holds(pre, T.tone(), pre)

    def sequence_rule(self, pre, first, middle, second, post):
        """If ``{pre} first {middle}`` and ``{middle} second {post}`` then
        ``{pre} first;second {post}``.  Returns the conclusion's verdict after
        checking the premises (raises if a premise fails)."""
        first = self.kmt._coerce_term(first)
        second = self.kmt._coerce_term(second)
        if not self.holds(pre, first, middle):
            raise ValueError("sequence rule premise {pre} first {middle} does not hold")
        if not self.holds(middle, second, post):
            raise ValueError("sequence rule premise {middle} second {post} does not hold")
        return self.holds(pre, T.tseq(first, second), post)

    def consequence_rule(self, stronger_pre, pre, program, post, weaker_post):
        """Strengthening the precondition / weakening the postcondition preserves validity."""
        if isinstance(stronger_pre, str):
            stronger_pre = self.kmt.parse_pred(stronger_pre)
        if isinstance(pre, str):
            pre = self.kmt.parse_pred(pre)
        if isinstance(post, str):
            post = self.kmt.parse_pred(post)
        if isinstance(weaker_post, str):
            weaker_post = self.kmt.parse_pred(weaker_post)
        if not self.kmt.less_or_equal(T.ttest(stronger_pre), T.ttest(pre)):
            raise ValueError("consequence rule requires stronger_pre <= pre")
        if not self.kmt.less_or_equal(T.ttest(post), T.ttest(weaker_post)):
            raise ValueError("consequence rule requires post <= weaker_post")
        if not self.holds(pre, program, post):
            raise ValueError("consequence rule premise {pre} program {post} does not hold")
        return self.holds(stronger_pre, program, weaker_post)

    def while_rule(self, invariant, guard, body):
        """``{inv} while (guard) { body } {inv ; ~guard}`` given ``{inv;guard} body {inv}``.

        Returns the conclusion's verdict after checking the loop-invariant
        premise (raises if the premise fails).
        """
        if isinstance(invariant, str):
            invariant = self.kmt.parse_pred(invariant)
        if isinstance(guard, str):
            guard = self.kmt.parse_pred(guard)
        body = self.kmt._coerce_term(body)
        if not self.holds(T.pand(invariant, guard), body, invariant):
            raise ValueError("while rule premise {inv;guard} body {inv} does not hold")
        loop = T.tseq(T.tstar(T.tseq(T.ttest(guard), body)), T.ttest(T.pnot(guard)))
        return self.holds(invariant, loop, T.pand(invariant, T.pnot(guard)))
