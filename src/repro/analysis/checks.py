"""Static program analyses served by the engine: verify / prog_equiv / dead_code.

The paper's motivating workload (Section 1.1, Fig. 1) is verifying small
imperative programs by compiling them to KMT terms.  This module turns that
scenario into engine queries over a :class:`~repro.engine.session.EngineSession`:

``verify``
    Decides the partial-correctness triple ``{pre} prog {post}`` via Kozen's
    KAT encoding — the triple holds iff ``pre;prog;~post == 0``.  Deciding it
    as an equivalence against ``0`` (rather than a bare emptiness bit) buys a
    counterexample on failure: the distinguishing cell is a satisfiable
    assignment of primitive tests under which the program can run and end in a
    ``~post`` state, and the distinguishing word is a witness trace of
    primitive actions.

``prog_equiv``
    Decides equivalence of two While programs by compiling both and routing
    the terms through the session's cached equivalence pipeline, so
    edit-recheck loops hit warm normal forms, signature memos and the ``aut``
    LRU.

``dead_code``
    Reports, per statement, whether it is unreachable.  Every parsed
    statement carries a source span; the analysis threads a *reachability
    prefix* term through the program (guard-path prefixes for branches and
    loop bodies) and a statement is dead iff its prefix language is empty — a
    per-summand bit-test on the cached compiled automata
    (:meth:`EquivalenceChecker.is_empty_nf`).  Dead statements report their
    span plus the innermost *reason guard* (the controlling branch/loop guard
    or the preceding ``assume``/``abort``) with its own span.

All three parse program text through one session-local compile cache
(``caches.prog``: source text → compiled term + AST), so re-checking an
unchanged program never re-parses, and re-checking a mutated one only pays
for the parts whose *normal forms* changed.
"""

from __future__ import annotations

from repro.analysis.hoare import HoareTriple
from repro.core import terms as T
from repro.lang.while_lang import (
    Abort,
    Assert,
    Assume,
    If,
    Seq,
    Skip,
    While,
    parse_program,
)
from repro.utils.errors import line_and_column
from repro.utils.trace import current_trace

_MISS = object()


def compiled_program(session, text):
    """Parse + compile a While program, memoized on the session by source text.

    Returns ``(WhileProgram, Term)``.  The parse+compile work is recorded
    under the ``prog_compile`` trace phase (cache hits record nothing).
    """
    if not isinstance(text, str):
        raise TypeError(f"a While program must be given as source text, got {text!r}")
    cache = getattr(session.caches, "prog", None)
    if cache is not None:
        cached = cache.get(text, _MISS)
        if cached is not _MISS:
            return cached
    trace = current_trace()
    if trace is None:
        program = parse_program(text, session.theory)
        term = program.compile()
    else:
        with trace.span("prog_compile"):
            program = parse_program(text, session.theory)
            term = program.compile()
    value = (program, term)
    if cache is not None:
        cache.put(text, value)
    return value


def _search_counters(result):
    payload = {
        "cells_explored": result.cells_explored,
        "cells_pruned": result.cells_pruned,
        "signatures_explored": result.signatures_explored,
    }
    if result.cached:
        # Replayed verdict: the counters describe the run that first
        # computed it, not work done for this request.
        payload["cached"] = True
    return payload


def verify(session, pre, program, post, cancel=None):
    """Decide ``{pre} program {post}``; returns the JSONL ``result`` payload."""
    pre_pred = session.parse_pred(pre) if isinstance(pre, str) else pre
    post_pred = session.parse_pred(post) if isinstance(post, str) else post
    _, term = compiled_program(session, program)
    encoding = HoareTriple(pre_pred, term, post_pred).encoding()
    result = session.check_equivalent(encoding, T.tzero(), cancel=cancel)
    payload = {"holds": result.equivalent}
    payload.update(_search_counters(result))
    if not result.equivalent and result.counterexample is not None:
        cex = result.counterexample
        payload["counterexample"] = cex.describe()
        # The machine-readable witness: a trace of primitive actions the
        # program can take (from a state satisfying the cell) that ends in a
        # state where the postcondition fails.
        payload["witness_trace"] = [str(pi) for pi in cex.word or ()]
    return payload


def prog_equiv(session, left, right, cancel=None):
    """Decide equivalence of two While programs; returns the ``result`` payload."""
    _, left_term = compiled_program(session, left)
    _, right_term = compiled_program(session, right)
    result = session.check_equivalent(left_term, right_term, cancel=cancel)
    payload = {"equivalent": result.equivalent}
    payload.update(_search_counters(result))
    if result.counterexample is not None:
        payload["counterexample"] = result.counterexample.describe()
    return payload


# ---------------------------------------------------------------------------
# dead code
# ---------------------------------------------------------------------------


def _span_payload(source, span):
    start, end = span
    line, column = line_and_column(source, start)
    return {"start": start, "end": end, "line": line, "column": column}


def _stmt_text(source, stmt):
    if stmt.span is not None and source is not None:
        text = source[stmt.span[0]:stmt.span[1]]
    else:
        text = stmt.pretty()
    # Blocks span multiple lines; their headline is enough to identify them.
    return " ".join(text.split())[:120]


class _DeadCodeWalk:
    """Collects ``(statement, reachability prefix, reason)`` in program order."""

    def __init__(self, source):
        self.source = source
        self.entries = []

    def _guard_reason(self, stmt, negated):
        reason = {
            "kind": "guard",
            "guard": stmt.cond.pretty(),
            "negated": negated,
        }
        if stmt.cond_span is not None and self.source is not None:
            reason["guard"] = self.source[stmt.cond_span[0]:stmt.cond_span[1]]
            reason["span"] = _span_payload(self.source, stmt.cond_span)
        return reason

    def _stmt_reason(self, stmt, kind):
        reason = {"kind": kind}
        if kind in ("assume", "assert"):
            reason["guard"] = stmt.pred.pretty()
        if stmt.span is not None and self.source is not None:
            reason["span"] = _span_payload(self.source, stmt.span)
        return reason

    def walk(self, stmt, prefix, reason):
        """Returns ``(exit_prefix, exit_reason)`` for control flow after ``stmt``."""
        if isinstance(stmt, Seq):
            for inner in stmt.statements:
                prefix, reason = self.walk(inner, prefix, reason)
            return prefix, reason
        # The implicit ``else { skip; }`` of an if-without-else has no span;
        # reporting it would point at nothing the user wrote.
        if stmt.span is not None or self.source is None:
            self.entries.append((stmt, prefix, reason))
        if isinstance(stmt, If):
            guard = T.ttest(stmt.cond)
            not_guard = T.ttest(T.pnot(stmt.cond))
            then_exit, _ = self.walk(
                stmt.then_branch, T.tseq(prefix, guard),
                self._guard_reason(stmt, negated=False))
            else_exit, _ = self.walk(
                stmt.else_branch, T.tseq(prefix, not_guard),
                self._guard_reason(stmt, negated=True))
            return T.tplus(then_exit, else_exit), reason
        if isinstance(stmt, While):
            guard = T.ttest(stmt.cond)
            body_term = stmt.body.compile()
            # Reaching the body (at any iteration) means: prefix, then some
            # complete iterations, then the guard holding once more.
            body_prefix = T.tseq(prefix, T.tseq(T.tstar(T.tseq(guard, body_term)), guard))
            self.walk(stmt.body, body_prefix, self._guard_reason(stmt, negated=False))
            return T.tseq(prefix, stmt.compile()), reason
        exit_prefix = T.tseq(prefix, stmt.compile())
        if isinstance(stmt, Assume):
            reason = self._stmt_reason(stmt, "assume")
        elif isinstance(stmt, Assert):
            reason = self._stmt_reason(stmt, "assert")
        elif isinstance(stmt, Abort):
            reason = self._stmt_reason(stmt, "abort")
        elif isinstance(stmt, Skip):
            pass  # skip constrains nothing; the previous reason stands
        return exit_prefix, reason


def dead_code(session, program, cancel=None):
    """Per-statement unreachability report; returns the ``result`` payload.

    Statement order follows the source (pre-order over the AST).  A dead
    statement's entry carries its exact source span and the reason guard; a
    statement nested under a dead construct is itself reported dead (its
    prefix language is empty too).
    """
    prog, _ = compiled_program(session, program)
    source = prog.source
    walker = _DeadCodeWalk(source)
    walker.walk(prog.body, T.tone(), None)
    statements = []
    dead = 0
    for stmt, prefix, reason in walker.entries:
        is_dead = session._is_empty_nf_cached(prefix, cancel=cancel)
        entry = {
            "text": _stmt_text(source, stmt),
            "dead": is_dead,
        }
        if stmt.span is not None and source is not None:
            entry["span"] = _span_payload(source, stmt.span)
        if is_dead:
            dead += 1
            if reason is not None:
                entry["reason"] = reason
        statements.append(entry)
    trace = current_trace()
    if trace is not None:
        trace.count("statements_analyzed", len(statements))
        if dead:
            trace.count("dead_statements", dead)
    return {"statements": statements, "total": len(statements), "dead": dead}
