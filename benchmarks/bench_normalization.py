"""Normalization cost across the shipped client theories.

Not tied to a single figure: this harness characterises the pushback engine
itself (steps, primitive pushbacks, resulting normal-form size) on one
representative guarded loop per theory.  It backs the Section 5 observation
that normalization is fast when Denest is avoided and is the place to watch
when adding new theories.
"""

import pytest

from repro.core import terms as T
from repro.core.pushback import normalize_with_stats


def _record(benchmark, theory, term, budget=2_000_000):
    def run():
        return normalize_with_stats(term, theory, budget=budget)

    nf, stats = benchmark(run)
    benchmark.extra_info.update(
        summands=len(nf),
        steps=stats.steps,
        prim_pushbacks=stats.prim_pushbacks,
        denests=stats.denests,
    )
    return nf, stats


def test_normalize_incnat_guarded_loop(benchmark, kmt_incnat):
    term = kmt_incnat.parse("inc(x)*; x > 8")
    nf, _ = _record(benchmark, kmt_incnat.theory, term)
    assert len(nf) == 10


def test_normalize_bitvec_parity_loop(benchmark, kmt_bitvec):
    term = kmt_bitvec.parse("x = F; (flip x; flip x)*; x = F")
    nf, _ = _record(benchmark, kmt_bitvec.theory, term)
    assert len(nf) >= 1


def test_normalize_product_population_count(benchmark, kmt_product):
    term = kmt_product.parse(
        "y < 1; a = T; inc(y); (1 + b = T; inc(y)); (1 + c = T; inc(y)); y > 2"
    )
    nf, _ = _record(benchmark, kmt_product.theory, term)
    assert len(nf) >= 1


def test_normalize_sets_insertion_loop(benchmark, kmt_sets):
    term = kmt_sets.parse("(inc(i); add(X, i))*; i > 3; in(X, 3)")
    nf, _ = _record(benchmark, kmt_sets.theory, term)
    assert len(nf) >= 1


def test_normalize_ltlf_invariant(benchmark, kmt_ltlf_nat):
    theory = kmt_ltlf_nat.theory
    nat = theory.inner
    term = T.tseq(
        kmt_ltlf_nat.parse("inc(x); inc(x)"),
        T.ttest(theory.always(nat.le("x", 5))),
    )
    nf, _ = _record(benchmark, theory, term)
    assert len(nf) >= 1


def test_normalize_temporal_netkat_waypoint(benchmark, kmt_temporal_netkat):
    theory = kmt_temporal_netkat.theory
    term = T.tseq(
        kmt_temporal_netkat.parse("sw = 1; sw <- 2; sw <- 3"),
        T.ttest(theory.ever(theory.inner.eq("sw", 2))),
    )
    nf, _ = _record(benchmark, theory, term)
    assert len(nf) >= 1
