"""Cluster scaling: the consistent-hash router over 1/2/4 local backends.

Replays ``bench_serve``'s simulated-solver-oracle workload (mixed theories,
``oracle_delay_ms`` of GIL-releasing wait per oracle call — the shape of a
real Z3-over-IPC deployment) through :class:`repro.engine.router.Router`
against real ``kmt serve --socket`` subprocess backends:

* ``cluster_1`` — the router in front of one backend: the routing hop's
  overhead baseline.
* ``cluster_2`` / ``cluster_4`` — two / four backends, each its own OS
  process with its own GIL, workers and warm caches; the router spreads the
  workload by content affinity.

Because each backend is a separate *process*, adding backends multiplies
both the oracle-wait overlap and the usable cores, so throughput should
scale near-linearly until the machine runs out of CPUs.  The report carries
``cpus`` and the gates are honest about it: on a single-CPU container the
in-process compute share of every query serializes no matter how many
backends there are, so the scaling gates are skipped with a note (the same
policy as ``bench_serve``'s process-backend gate) instead of fabricated.

A **failover accounting** pass always runs and always gates: mid-workload,
one of two backends is SIGKILL'd; every request id must come back exactly
once (retried responses are marked ``"retries": n``) — zero lost, zero
duplicated, verdicts identical to the healthy run's.

Run directly to emit ``BENCH_cluster.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_cluster.py            # full (gated)
    PYTHONPATH=src python benchmarks/bench_cluster.py --smoke    # CI gate
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_serve import CPUS, ORACLE_DELAY_MS, TESTING_SPEC, make_workload

from repro.engine.router import Router
from repro.engine.server import ResponseSink

_REPO = os.path.normpath(os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))

BACKEND_WORKERS = 4
REQUESTS = 240
SMOKE_REQUESTS = 60

#: Full-run scaling gates (enforced only with the cores to honor them):
#: near-linear would be 2.0 / 4.0; the thresholds leave headroom for the
#: router hop and the shared parse/merge work.
GATE_2_BACKENDS = 1.7
GATE_4_BACKENDS = 3.0


class _Sink(ResponseSink):
    def __init__(self):
        self.responses = []
        super().__init__(lambda line: self.responses.append(json.loads(line)))


class _Backend:
    """One ``kmt serve --socket`` subprocess with the env-configured oracle."""

    def __init__(self, delay_ms):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(_REPO, "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        env["KMT_TEST_ORACLE_DELAY_MS"] = str(delay_ms)
        env["KMT_TEST_ORACLE_THEORIES"] = ""  # wrap every theory
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--socket", "127.0.0.1:0", "--workers", str(BACKEND_WORKERS),
             "--theory-factory", TESTING_SPEC],
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True, env=env)
        self.port = None
        for _ in range(1000):
            line = self.proc.stderr.readline()
            if not line:
                raise AssertionError("backend exited before announcing its port")
            if line.startswith("# listening on "):
                self.port = int(line.split()[3].rsplit(":", 1)[1])
                break
        assert self.port is not None, "backend never announced its port"
        self.key = f"127.0.0.1:{self.port}"
        threading.Thread(target=self._drain, daemon=True).start()

    def _drain(self):
        for _ in self.proc.stderr:
            pass

    def sigkill(self):
        self.proc.kill()
        self.proc.wait(timeout=30)

    def stop(self):
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=30)


#: Result fields that legitimately differ across cluster layouts (cache
#: history depends on which stripe warmed first), mirroring the differential
#: soak harness's projection.
_HISTORY_DEPENDENT = ("cells_explored", "cells_pruned", "cached")


def _core(response):
    out = {key: value for key, value in response.items()
           if key not in ("result", "error", "retries")}
    result = response.get("result")
    if isinstance(result, dict):
        out["result"] = {key: value for key, value in result.items()
                         if key not in _HISTORY_DEPENDENT}
    return out


def _cluster_oracle_calls(router, sink):
    """Cluster-wide oracle-call total via the router's ``metrics`` fan-out."""
    before = len(sink.responses)
    router.submit_line(json.dumps({"op": "metrics", "id": "__bench_metrics__"}), sink)
    reply = next(r for r in sink.responses[before:] if r["id"] == "__bench_metrics__")
    entries = reply["result"]["counters"].get("oracle_calls_total", [])
    return int(sum(entry["value"] for entry in entries))


def run_cluster(lines, n_backends, delay_ms, kill_index=None):
    """Serve ``lines`` through the router over ``n_backends`` subprocesses.

    ``kill_index`` (an index into the backend list) SIGKILLs that backend
    after half the workload has been submitted.  Returns the mode report
    with the raw responses attached (the caller verifies, then drops them).
    """
    backends = [_Backend(delay_ms) for _ in range(n_backends)]
    router = Router([("127.0.0.1", backend.port) for backend in backends],
                    queue_limit=max(512, len(lines)), probe_interval=0.3)
    try:
        router.start()
        if not router.wait_all_up(timeout=120.0):
            raise AssertionError(f"{n_backends} backends never all joined the ring")
        sink = _Sink()
        half = len(lines) // 2
        started = time.perf_counter()
        for line in lines[:half]:
            router.submit_line(line, sink)
        if kill_index is not None:
            backends[kill_index].sigkill()
        for line in lines[half:]:
            router.submit_line(line, sink)
        if not router.wait_idle(timeout=600.0):
            raise AssertionError("router never drained")
        elapsed = time.perf_counter() - started
        responses = list(sink.responses)
        oracle_calls = _cluster_oracle_calls(router, sink) if kill_index is None \
            else None  # the dead backend's counters died with it
        stats = router.router_stats()
    finally:
        router.shutdown(drain=False)
        for backend in backends:
            backend.stop()
    report = {
        "mode": f"cluster_{n_backends}",
        "backends": n_backends,
        "workers_per_backend": BACKEND_WORKERS,
        "seconds": round(elapsed, 4),
        "qps": round(len(lines) / elapsed, 1) if elapsed else float("inf"),
        "oracle_calls": oracle_calls,
        "retried": stats["requests"]["retried"],
        "responses": responses,
    }
    if kill_index is not None:
        report["ejections"] = sum(info["ejections"]
                                  for info in stats["backends"].values())
    return report


def _verify(lines, results, reference):
    """Exact id accounting and verdict identity for every run."""
    expected = sorted(json.loads(line)["id"] for line in lines)
    wanted = {r["id"]: _core(r) for r in reference["responses"]}
    for result in results:
        got = sorted(r["id"] for r in result["responses"])
        assert got == expected, f"{result['mode']}: id set mismatch"
        for response in result["responses"]:
            if response.get("error_code") == "backend_down":
                continue  # kill-run casualties are accounted separately
            assert _core(response) == wanted[response["id"]], (
                f"{result['mode']}: response for {response['id']} diverges")


def run_scaling(lines, delay_ms, sizes):
    results = [run_cluster(lines, n, delay_ms) for n in sizes]
    _verify(lines, results, results[0])
    base = results[0]["seconds"]
    report = {
        "requests": len(lines),
        "oracle_delay_ms": delay_ms,
        "cpus": CPUS,
        "results": results,
        "speedups_vs_1_backend": {
            str(result["backends"]): round(base / result["seconds"], 2)
            for result in results[1:]
        },
    }
    for result in results:
        del result["responses"]  # verified; keep the artifact small
    return report


def run_failover(lines, delay_ms):
    """Two backends, one SIGKILL'd mid-run: gate on exact accounting."""
    healthy = run_cluster(lines, 2, delay_ms)
    killed = run_cluster(lines, 2, delay_ms, kill_index=0)
    _verify(lines, [healthy, killed], healthy)
    ids = [r["id"] for r in killed["responses"]]
    downs = [r for r in killed["responses"]
             if r.get("error_code") == "backend_down"]
    report = {
        "requests": len(lines),
        "lost_ids": len(lines) - len(set(ids)),
        "duplicated_ids": len(ids) - len(set(ids)),
        "retried": killed["retried"],
        "backend_down_errors": len(downs),
        "ejections": killed["ejections"],
    }
    for result in (healthy, killed):
        del result["responses"]
    return report


def _gate_scaling(report, smoke):
    """Enforce near-linear scaling where the hardware makes it possible."""
    ok = True
    speedups = report["speedups_vs_1_backend"]
    for backends_text, speedup in sorted(speedups.items()):
        backends = int(backends_text)
        if smoke:
            # CI smoke lane: directional gate only (tiny workload, shared
            # runners) — more backends must not be slower than one.
            threshold, label = 1.0, "smoke"
        else:
            threshold, label = (GATE_2_BACKENDS, "full") if backends == 2 \
                else (GATE_4_BACKENDS, "full")
        if CPUS < min(backends, 4):
            print(f"# SKIPPED cluster_{backends} scaling gate: {CPUS} CPU(s) "
                  f"available, {backends}-process parallel speedup impossible "
                  f"(measured {speedup}x)", file=sys.stderr)
            continue
        if speedup < threshold:
            print(f"# FAIL: cluster_{backends} speedup {speedup}x is below the "
                  f"{label} gate {threshold}x", file=sys.stderr)
            ok = False
        else:
            print(f"# OK: cluster_{backends} beat cluster_1 by {speedup}x "
                  f"(gate {threshold}x)", file=sys.stderr)
    return ok


def _gate_failover(report):
    ok = report["lost_ids"] == 0 and report["duplicated_ids"] == 0
    if ok:
        print(f"# OK: SIGKILL mid-run lost 0 ids, duplicated 0 ids "
              f"({report['retried']} retried, "
              f"{report['backend_down_errors']} backend_down)", file=sys.stderr)
    else:
        print(f"# FAIL: SIGKILL mid-run lost {report['lost_ids']} / duplicated "
              f"{report['duplicated_ids']} ids", file=sys.stderr)
    return ok


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    smoke = "--smoke" in argv
    sizes = (1, 2) if smoke else (1, 2, 4)
    total = SMOKE_REQUESTS if smoke else REQUESTS
    lines = make_workload(total)
    report = {
        "benchmark": "cluster_scaling",
        "smoke": smoke,
        "scaling": run_scaling(lines, ORACLE_DELAY_MS, sizes),
        "failover": run_failover(lines, ORACLE_DELAY_MS),
        "notes": (
            "each backend is a separate OS process (own GIL), so backends "
            "multiply both oracle-wait overlap and usable cores; scaling "
            "gates apply only when the CPU count makes the target physically "
            "possible, failover accounting gates always"
        ),
    }
    artifact = os.path.join(_REPO, "BENCH_cluster.json")
    with open(artifact, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"# wrote {artifact}", file=sys.stderr)
    ok = _gate_scaling(report["scaling"], smoke)
    ok = _gate_failover(report["failover"]) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
