"""Fig. 9: the paper's implementation microbenchmarks, one bench per row.

Each benchmark measures the end-to-end cost of the same equivalence query the
paper reports (parse + normalize + decide).  Absolute times will differ from
the paper's OCaml numbers; EXPERIMENTS.md records both so the *shape* (which
queries are instant, which one blows up) can be compared.
"""

import pytest

from repro.core import terms as T
from repro.core.kmt import KMT
from repro.theories.bitvec import BitVecTheory
from repro.utils.errors import NormalizationBudgetExceeded

from benchmarks.conftest import flip_loop, random_arithmetic_predicate


def test_fig9_row1_star_neq_pred(benchmark, kmt_incnat):
    """a* != a for a random arithmetic predicate a (theory N).  Paper: 0.034s."""
    pred = random_arithmetic_predicate()
    star = T.tstar(T.ttest(pred))
    plain = T.ttest(pred)

    def query():
        return kmt_incnat.equivalent(star, plain)

    assert benchmark(query) is False


def test_fig9_row2_star_idempotent(benchmark, kmt_incnat):
    """inc_x*; x>10 == inc_x*; inc_x*; x>10 (theory N).  Paper: <0.001s."""
    left = kmt_incnat.parse("inc(x)*; x > 10")
    right = kmt_incnat.parse("inc(x)*; inc(x)*; x > 10")

    def query():
        return kmt_incnat.equivalent(left, right)

    assert benchmark(query) is True


def test_fig9_row3_commute_counters(benchmark, kmt_incnat):
    """inc_x*; x>3; inc_y*; y>3 == inc_x*; inc_y*; x>3; y>3 (theory N).  Paper: <0.001s."""
    left = kmt_incnat.parse("inc(x)*; x > 3; inc(y)*; y > 3")
    right = kmt_incnat.parse("inc(x)*; inc(y)*; x > 3; y > 3")

    def query():
        return kmt_incnat.equivalent(left, right)

    assert benchmark(query) is True


def test_fig9_row4_parity_loop(benchmark, kmt_bitvec):
    """x=F; (flip x; flip x)* == (flip x; flip x)*; x=F (theory B).  Paper: <0.001s."""
    left = kmt_bitvec.parse("x = F; (flip x; flip x)*")
    right = kmt_bitvec.parse("(flip x; flip x)*; x = F")

    def query():
        return kmt_bitvec.equivalent(left, right)

    assert benchmark(query) is True


def test_fig9_row5_boolean_tree(benchmark, kmt_bitvec):
    """4-variable if-condition re-association (theory B).  Paper: <0.001s."""
    left = kmt_bitvec.parse(
        "w := F; x := T; y := F; z := F; "
        "(if(w = T + x = T + y = T + z = T) then a := T else a := F)"
    )
    right = kmt_bitvec.parse(
        "w := F; x := T; y := F; z := F; "
        "(if((w = T + x = T) + (y = T + z = T)) then a := T else a := F)"
    )

    def query():
        return kmt_bitvec.equivalent(left, right)

    assert benchmark(query) is True


def test_fig9_row6_population_count(benchmark, kmt_product):
    """Population count over N x B (theory N×B).  Paper: 0.309s."""
    left = kmt_product.parse(
        "y < 1; a = T; inc(y); (1 + b = T; inc(y)); (1 + c = T; inc(y)); y > 2"
    )
    right = kmt_product.parse("y < 1; a = T; b = T; c = T; inc(y); inc(y); inc(y)")

    def query():
        return kmt_product.equivalent(left, right)

    assert benchmark(query) is True


def test_fig9_row7_flip3_timeout(benchmark):
    """(flip x + flip y + flip z)* == itself (theory B).  Paper: >30s timeout.

    The blow-up is in normalization (the Denest rule); we bound it with a step
    budget and benchmark the time to exhaust that budget, which is this
    implementation's analogue of the paper's 30-second timeout.
    """
    term, theory = flip_loop(("x", "y", "z"))
    kmt = KMT(theory, budget=100_000)

    def query():
        try:
            kmt.equivalent(term, term)
        except NormalizationBudgetExceeded:
            return "budget-exceeded"
        return "completed"

    result = benchmark.pedantic(query, rounds=1, iterations=1)
    assert result == "budget-exceeded"
