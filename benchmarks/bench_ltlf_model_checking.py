"""Section 2.4: temporal-logic pushback and model checking as equivalence.

Two workloads:

* the weakest-precondition calculation the paper walks through (pushing
  ``always(j <= N)`` back through an increment), swept over the constant N to
  show the cost tracks the subterm count of the bound test;
* model checking a bounded counter loop against past-time properties by
  equivalence and by emptiness.
"""

import pytest

from repro.core import terms as T
from repro.core.kmt import KMT
from repro.theories.incnat import IncNatTheory, Incr
from repro.theories.ltlf import LtlfTheory


@pytest.fixture
def ltlf_setup():
    nat = IncNatTheory(variables=("j",))
    theory = LtlfTheory(nat)
    kmt = KMT(theory)
    return kmt, theory, nat


@pytest.mark.parametrize("bound", [10, 50, 200])
def test_ltlf_weakest_precondition_sweep(benchmark, ltlf_setup, bound):
    """Push always(j <= bound) back through inc(j) (the paper uses bound = 200)."""
    kmt, theory, nat = ltlf_setup
    invariant = theory.always(nat.le("j", bound))

    def push():
        return kmt.weakest_precondition(Incr("j"), invariant)

    wp = benchmark(push)
    # The result is (j <= bound-1) ; always(j <= bound): check the shape.
    assert nat.le("j", bound - 1) in {wp} | set(_conjuncts(wp))


def _conjuncts(pred):
    if isinstance(pred, T.PAnd):
        return _conjuncts(pred.left) | _conjuncts(pred.right)
    return {pred}


def test_ltlf_pushback_equivalence(benchmark, ltlf_setup):
    """inc j; always(j <= 2)  ==  (j <= 1); always(j <= 2); inc j  (Section 2.4)."""
    kmt, theory, nat = ltlf_setup
    lhs = T.tseq(nat.inc("j"), T.ttest(theory.always(nat.le("j", 2))))
    rhs = T.tseq(
        T.ttest(T.pand(nat.le("j", 1), theory.always(nat.le("j", 2)))), nat.inc("j")
    )

    def query():
        return kmt.equivalent(lhs, rhs)

    assert benchmark(query) is True


def test_ltlf_model_check_loop_invariant(benchmark, ltlf_setup):
    """Model check always(j <= 3) on an anchored bounded counter loop."""
    kmt, theory, nat = ltlf_setup
    anchored = T.tseq(
        T.ttest(T.pand(theory.start(), kmt.parse_pred("j < 1"))),
        kmt.parse("while (j < 3) do inc(j) end"),
    )
    prop = T.ttest(theory.always(nat.le("j", 3)))

    def query():
        return kmt.equivalent(anchored, T.tseq(anchored, prop))

    result = benchmark.pedantic(query, rounds=2, iterations=1)
    assert result is True


def test_ltlf_model_check_violation_detected(benchmark, ltlf_setup):
    """The same loop does not satisfy always(j <= 2): detected as inequivalence."""
    kmt, theory, nat = ltlf_setup
    anchored = T.tseq(
        T.ttest(T.pand(theory.start(), kmt.parse_pred("j < 1"))),
        kmt.parse("while (j < 3) do inc(j) end"),
    )
    prop = T.ttest(theory.always(nat.le("j", 2)))

    def query():
        return kmt.equivalent(anchored, T.tseq(anchored, prop))

    result = benchmark.pedantic(query, rounds=2, iterations=1)
    assert result is False
