"""Telemetry overhead: the observability layer must be ~free when idle.

Replays the mixed-theory serving workload (shared with
:mod:`benchmarks.bench_serve`) through three configurations of the concurrent
query server, worker threads, no simulated oracle latency — every query is a
sub-millisecond cache-and-compute affair, which is exactly where per-request
instrumentation overhead would show up:

* ``baseline`` — telemetry compiled out: ``enable_metrics=False``, no log
  handler, no traces.  What the server cost before this subsystem existed.
* ``telemetry_off`` — the shipping default: metrics registry recording every
  request, JSON-lines logging configured (at ``warning``, so nothing fires) —
  but **no request asks for a trace**.  The acceptance gate lives here:
  best-of-repeats throughput must stay within ``MAX_REGRESSION`` of baseline
  (tracing off may not tax the hot path).
* ``traced`` — every request carries ``"trace": true``.  Informational: the
  price of a full phase breakdown when you explicitly ask for one.  This is
  also what ``--slow-query-ms`` costs, since the slow-query log must trace
  every request to have the offender's breakdown in hand after the fact.

Each (mode, repeat) gets a fresh derivative memo and fresh sessions so no
mode inherits another's warm caches; the best repeat represents each mode
(noise on shared CI boxes is one-sided — interference only ever slows a run).
The ``telemetry_off`` server's final Prometheus exposition is written next to
the JSON report as ``BENCH_telemetry.prom`` — the scrape artifact CI uploads.

Run directly to emit ``BENCH_telemetry.json`` + ``BENCH_telemetry.prom``::

    PYTHONPATH=src python benchmarks/bench_telemetry.py            # full
    PYTHONPATH=src python benchmarks/bench_telemetry.py --smoke    # CI gate
"""

from __future__ import annotations

import io
import json
import logging
import os
import sys
import time

from repro.core import automata
from repro.engine.cache import LRUCache
from repro.engine.server import QueryServer, serve_stdio
from repro.engine.telemetry import configure_logging

from benchmarks.bench_serve import make_workload

WORKERS = 4
REQUESTS = 480
SMOKE_REQUESTS = 180
REPEATS = 5
SMOKE_REPEATS = 3
#: telemetry_off may not cost more than this fraction of baseline throughput.
MAX_REGRESSION = 0.05


def _traced(lines):
    out = []
    for line in lines:
        record = json.loads(line)
        record["trace"] = True
        out.append(json.dumps(record))
    return out


def _silence_logging():
    """Drop any configured ``kmt`` handler (back to the silent default)."""
    logger = logging.getLogger("kmt")
    for handler in list(logger.handlers):
        if not isinstance(handler, logging.NullHandler):
            logger.removeHandler(handler)
            handler.close()
    logger.setLevel(logging.NOTSET)


def _serve_once(lines, enable_metrics, slow_query_ms, want_scrape=False):
    """One serving run on a fresh cache world; returns (elapsed_s, scrape)."""
    saved = automata.get_derivative_cache()
    automata.set_derivative_cache(LRUCache(maxsize=65536, name="deriv"))
    try:
        server = QueryServer(workers=WORKERS, queue_limit=128,
                             enable_metrics=enable_metrics,
                             slow_query_ms=slow_query_ms)
        server.start()
        try:
            stdin = io.StringIO("\n".join(lines) + "\n")
            stdout = io.StringIO()
            started = time.perf_counter()
            serve_stdio(stdin, stdout, server=server)
            elapsed = time.perf_counter() - started
            scrape = server.metrics_prometheus() if want_scrape else None
        finally:
            server.shutdown(drain=True)
    finally:
        automata.set_derivative_cache(saved)
    responses = [json.loads(line) for line in stdout.getvalue().splitlines()]
    bad = [r for r in responses if not r.get("ok")]
    if bad or len(responses) != len(lines):
        raise AssertionError(
            f"serving run broken: {len(responses)}/{len(lines)} answers, "
            f"{len(bad)} errors (first: {bad[0] if bad else None})")
    return elapsed, scrape


def _run_mode(name, lines, repeats, *, enable_metrics, slow_query_ms,
              logged=False, want_scrape=False):
    """Best-of-``repeats`` for one configuration."""
    if logged:
        # A real handler pointed at /dev/null: the formatter/levels machinery
        # is live, but at `warning` with a huge slow-query bar nothing fires.
        configure_logging(level="warning", log_file=os.devnull)
    else:
        _silence_logging()
    try:
        best, scrape = None, None
        samples = []
        for _ in range(repeats):
            elapsed, run_scrape = _serve_once(lines, enable_metrics, slow_query_ms,
                                              want_scrape=want_scrape)
            samples.append(round(elapsed, 4))
            if best is None or elapsed < best:
                best, scrape = elapsed, run_scrape
    finally:
        _silence_logging()
    return {
        "mode": name,
        "seconds": round(best, 4),
        "samples": samples,
        "qps": round(len(lines) / best, 1),
    }, scrape


def run_all(total, repeats):
    lines = make_workload(total)
    baseline, _ = _run_mode("baseline", lines, repeats,
                            enable_metrics=False, slow_query_ms=None)
    off, scrape = _run_mode("telemetry_off", lines, repeats,
                            enable_metrics=True, slow_query_ms=None,
                            logged=True, want_scrape=True)
    traced, _ = _run_mode("traced", _traced(lines), repeats,
                          enable_metrics=True, slow_query_ms=None, logged=True)
    overhead_off = off["seconds"] / baseline["seconds"] - 1.0
    overhead_traced = traced["seconds"] / baseline["seconds"] - 1.0
    return {
        "benchmark": "telemetry",
        "description": (
            "observability overhead on the concurrent query server: metrics + "
            "logging armed but tracing off (gated <= {:.0%} throughput cost) "
            "vs per-request tracing on (informational)".format(MAX_REGRESSION)
        ),
        "workers": WORKERS,
        "requests": total,
        "repeats": repeats,
        "modes": [baseline, off, traced],
        "overhead_off_pct": round(overhead_off * 100.0, 2),
        "overhead_traced_pct": round(overhead_traced * 100.0, 2),
        "max_regression_pct": MAX_REGRESSION * 100.0,
    }, scrape


def _gate(report, out=sys.stderr):
    baseline, off = report["modes"][0], report["modes"][1]
    ok = off["qps"] >= baseline["qps"] * (1.0 - MAX_REGRESSION)
    verdict = "OK" if ok else "FAIL"
    print(f"# {verdict}: telemetry_off {off['qps']} qps vs baseline "
          f"{baseline['qps']} qps ({report['overhead_off_pct']:+.2f}% time; "
          f"gate allows {MAX_REGRESSION:.0%} regression); "
          f"traced costs {report['overhead_traced_pct']:+.2f}%", file=out)
    return ok


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    smoke = "--smoke" in argv
    total = SMOKE_REQUESTS if smoke else REQUESTS
    repeats = SMOKE_REPEATS if smoke else REPEATS
    report, scrape = run_all(total, repeats)
    print(json.dumps(report, indent=2, sort_keys=True))
    root = os.path.normpath(os.path.join(
        os.path.dirname(os.path.abspath(__file__)), ".."))
    json_artifact = os.path.join(root, "BENCH_telemetry.json")
    prom_artifact = os.path.join(root, "BENCH_telemetry.prom")
    with open(json_artifact, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    with open(prom_artifact, "w", encoding="utf-8") as handle:
        handle.write(scrape)
    print(f"# wrote {json_artifact}")
    print(f"# wrote {prom_artifact} ({len(scrape.splitlines())} lines)")
    return 0 if _gate(report) else 1


if __name__ == "__main__":
    raise SystemExit(main())
