"""Section 2.6: Temporal NetKAT queries over a small network.

The paper derives Temporal NetKAT as LTLf(NetKAT) and uses waypointing-style
history queries as its motivating application.  These benchmarks measure
waypoint verification and slice-isolation queries over a three-switch line
network — the composition the original Temporal NetKAT paper needed a bespoke
metatheory for, obtained here by plugging two shipped theories together.
"""

import pytest

from repro.core import terms as T
from repro.theories.temporal_netkat import waypoint_query


@pytest.fixture
def network(kmt_temporal_netkat):
    kmt = kmt_temporal_netkat
    theory = kmt.theory
    policy = kmt.parse(
        "(sw = 1; dst = 2; sw <- 2)"
        " + (sw = 2; dst = 2; sw <- 3)"
        " + (sw = 2; dst = 1; sw <- 1)"
        " + (sw = 3; dst = 1; sw <- 2)"
    )
    crossbar = T.tseq(policy, T.tplus(T.tone(), policy))
    return kmt, theory, crossbar


def test_waypoint_verification(benchmark, network):
    """Every h1->h2 packet delivered at sw3 traversed the firewall at sw2."""
    kmt, theory, crossbar = network
    ingress = T.ttest(
        T.pand(theory.start(), T.pand(theory.inner.eq("sw", 1), theory.inner.eq("dst", 2)))
    )
    delivered = T.ttest(theory.inner.eq("sw", 3))
    runs = T.tseq(ingress, T.tseq(crossbar, delivered))
    waypoint = T.ttest(waypoint_query(theory, "sw", 2))

    def query():
        return kmt.equivalent(runs, T.tseq(runs, waypoint))

    result = benchmark.pedantic(query, rounds=3, iterations=1)
    assert result is True


def test_waypoint_violation_detected(benchmark, network):
    """If the policy short-circuits sw1 -> sw3, waypointing fails."""
    kmt, theory, crossbar = network
    bypass = T.tplus(crossbar, kmt.parse("sw = 1; dst = 2; sw <- 3"))
    ingress = T.ttest(
        T.pand(theory.start(), T.pand(theory.inner.eq("sw", 1), theory.inner.eq("dst", 2)))
    )
    delivered = T.ttest(theory.inner.eq("sw", 3))
    runs = T.tseq(ingress, T.tseq(bypass, delivered))
    waypoint = T.ttest(waypoint_query(theory, "sw", 2))

    def query():
        return kmt.equivalent(runs, T.tseq(runs, waypoint))

    result = benchmark.pedantic(query, rounds=3, iterations=1)
    assert result is False


def test_reachability_emptiness(benchmark, network):
    """Reachability as emptiness of ingress; crossbar; egress."""
    kmt, theory, crossbar = network
    ingress = T.ttest(
        T.pand(theory.start(), T.pand(theory.inner.eq("sw", 1), theory.inner.eq("dst", 2)))
    )
    delivered = T.ttest(theory.inner.eq("sw", 3))
    runs = T.tseq(ingress, T.tseq(crossbar, delivered))

    def query():
        return kmt.is_empty(runs)

    assert benchmark(query) is False


def test_history_query(benchmark, network):
    """dst rewriting hides the old value from tests but not from the history."""
    kmt, theory, _ = network
    program = kmt.parse("dst = 1; dst <- 2")
    before = T.ttest(theory.ever(theory.inner.eq("dst", 1)))

    def query():
        return kmt.equivalent(program, T.tseq(program, before))

    assert benchmark(query) is True
