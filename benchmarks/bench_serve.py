"""Serving throughput: the blocking loop vs the concurrent server's two backends.

Replays mixed-theory workloads through four serving configurations:

* ``single_loop`` — the legacy blocking stdio loop
  (:func:`repro.engine.batch.serve`): read a request, answer it, read the
  next.  This is the baseline the concurrent server replaces.
* ``server_1`` — :func:`repro.engine.server.serve_stdio` with one worker
  shard (concurrency machinery, no parallelism).
* ``server_4`` — four worker *threads* with session striping.
* ``server_proc_4`` — four worker *processes* (``--backend process``), each
  holding its own warm sessions; requests cross the boundary in the compact
  wire form.

Two regimes are reported:

**Simulated solver oracle.**  The theory's conjunction/satisfiability oracle
is wrapped with a small per-call sleep (``oracle_delay_ms``), modeling the
out-of-process SMT solver the paper's implementations actually call (Z3 over
IPC) — that wait releases the GIL, exactly like the real solver call would,
so worker *threads* already overlap it and worker processes buy nothing
extra.  This regime keeps the original acceptance gate: 4 thread shards must
beat the single-threaded loop by ≥ 3×.

**Pure compute.**  A CPU-bound workload (wide guard sums whose signature
search does ~10 ms of real in-process work per query, no oracle sleeps).
Here CPython's GIL serializes the thread backend — 4 threads honestly buy
~nothing — while the process backend genuinely parallelizes across cores.
The report carries ``cpus`` (the CPU affinity count actually available);
with ≥ 4 CPUs the run fails unless ``server_proc_4`` beats ``server_4`` by
≥ 2× (≥ 1.2× with 2–3 CPUs).  On a single-CPU machine no parallel speedup
is physically possible — the numbers are reported honestly and the gate is
skipped with a note rather than fabricated.

Server construction and worker-process spawn/import happen *outside* the
timed window (a long-lived server amortizes startup); every response in
every mode is checked for id correctness and verdict identity across modes.

Run directly to emit ``BENCH_serve.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_serve.py            # full (gated)
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke    # CI gate
"""

from __future__ import annotations

import io
import json
import os
import sys
import threading
import time

from repro.core import automata
from repro.engine.batch import SessionPool, serve
from repro.engine.cache import LRUCache
from repro.engine.server import QueryServer, serve_stdio
from repro.engine.testing import OracleLatencyTheory
from repro.theories import build_theory

ORACLE_DELAY_MS = 6.0
WORKERS = 4
REQUESTS = 240          # >= 200-request acceptance workload (80 per theory)
HEAVY_REQUESTS = 96     # pure-compute workload (~10 ms of real work each)
SMOKE_REQUESTS = 60
SMOKE_HEAVY_REQUESTS = 32
ACCEPTANCE_SPEEDUP = 3.0        # thread server vs single loop, oracle regime
PROCESS_SPEEDUP_TARGET = 2.0    # process vs thread backend, pure compute, >= 4 CPUs
PROCESS_SPEEDUP_FLOOR = 1.2     # same gate on 2-3 CPUs

#: Env-configured latency factory the worker processes can import by name.
TESTING_SPEC = "repro.engine.testing:oracle_latency_factory"


def _available_cpus():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


CPUS = _available_cpus()


class CallCounter:
    def __init__(self):
        self.calls = 0
        self._lock = threading.Lock()

    def bump(self):
        with self._lock:
            self.calls += 1


def make_workload(total):
    """``total`` JSONL request lines, ids ``q0..q{total-1}``, mixed theories."""
    lines = []
    index = 0

    def add(**fields):
        nonlocal index
        fields["id"] = f"q{index}"
        lines.append(json.dumps(fields))
        index += 1

    per_theory = total // 3

    def vary(i):
        # Mostly distinct queries (distinct atoms → real oracle work) with a
        # deliberate ~20% tail of repeats so the affinity/caching story is
        # exercised too: every 5th request replays an earlier one.
        return i // 5 if i % 5 == 4 else i

    for i in range(per_theory):
        k = vary(i) + 1
        if i % 2:
            # Two primitive tests under the guards → a real signature search
            # with several conjunction-oracle decisions per query.
            add(op="equiv", theory="incnat",
                left=f"x > {k}; inc(x); x > {k + 2}",
                right=f"x > {k}; x > {k - 1}; inc(x); x > {k + 2}")
        else:
            add(op="equiv", theory="incnat",
                left=f"inc(x); x > {k + 1}", right=f"x > {k}; inc(x)")
    for i in range(per_theory):
        k = vary(i)
        if i % 2:
            add(op="equiv", theory="bitvec",
                left=f"v{k} = T; flip v{k}", right=f"v{k} = T; flip v{k}; v{k} = F")
        else:
            add(op="sat", theory="bitvec", pred=f"v{k} = T + ~(v{k} = T)")
    for i in range(total - 2 * per_theory):
        k = vary(i)  # theory-local index, so the repeat tail really repeats
        add(op="equiv", theory="netkat",
            left=f"sw = {k}; sw <- {k + 1}", right=f"sw = {k}; sw <- {k + 1}; sw = {k + 1}")
    return lines


def make_heavy_workload(total):
    """CPU-bound workload: each query costs ~10 ms of in-process compute.

    Wide bitvec guard sums (4-5 independent guards → 16-32 signatures, each
    deciding a language comparison) with per-request-distinct variables, so
    nothing replays from a cache.  Sub-millisecond queries would measure pipe
    overhead, not compute — this is the workload where a process backend can
    honestly win.  Variable names are rejection-sampled so the content-hash
    stripes round-robin across the :data:`WORKERS` shards: the benchmark
    measures backend parallelism, not the luck of one hash draw (the measured
    speedup's ceiling is set by the most loaded worker).
    """
    from repro.engine.server import _affinity_stripe

    lines = []
    for index in range(total):
        width = 4 + index % 2
        for attempt in range(64):
            guards = [f"g{index}v{attempt}x{j} = T; b{index}v{attempt}x{j} := T"
                      for j in range(width)]
            left = " + ".join(guards)
            if index % 4 == 3:
                # An inequivalent tail: one branch assigns the other value.
                right = " + ".join(guards[:-1] + [f"g{index}v{attempt}x{width - 1} = T; "
                                                  f"b{index}v{attempt}x{width - 1} := F"])
            else:
                right = f"({left}) + ({left})"
            record = {"op": "equiv", "theory": "bitvec", "left": left, "right": right,
                      "id": f"q{index}"}
            if _affinity_stripe(record, WORKERS) == index % WORKERS:
                break
        lines.append(json.dumps(record))
    return lines


#: Runner return marker: "count oracle calls with the in-process counter".
#: The process runner instead returns its own measured count (or ``None``) —
#: its oracle calls happen inside worker processes where the in-process
#: counter cannot see them.
_COUNT_IN_PROCESS = object()


def _run_mode(name, lines, delay_ms, runner):
    """Run one serving configuration on a fresh process-cache world.

    Each mode gets its own derivative memo (the real one is process-wide and
    would leak warm state from one mode into the next) and fresh sessions via
    a fresh latency-wrapped theory factory.  ``runner`` builds and starts its
    server *outside* the timed window and returns ``(elapsed_seconds,
    oracle_calls)`` where ``oracle_calls`` is :data:`_COUNT_IN_PROCESS` (use
    the shared in-process counter — the thread modes), an exact count (the
    process backend pulls it off the worker stats pipe after the drain), or
    ``None`` (genuinely uncountable — distinct from a real zero, which would
    indicate a workload that stopped exercising the oracle).
    """
    counter = CallCounter()

    def theory_factory(theory_name):
        return OracleLatencyTheory(build_theory(theory_name), delay_ms / 1000.0, counter)

    saved = automata.get_derivative_cache()
    automata.set_derivative_cache(LRUCache(maxsize=65536, name="deriv"))
    try:
        stdin = io.StringIO("\n".join(lines) + "\n")
        stdout = io.StringIO()
        elapsed, oracle_calls = runner(stdin, stdout, delay_ms, theory_factory)
    finally:
        automata.set_derivative_cache(saved)
    if oracle_calls is _COUNT_IN_PROCESS:
        oracle_calls = counter.calls
    responses = [json.loads(line) for line in stdout.getvalue().splitlines()]
    return {
        "mode": name,
        "seconds": round(elapsed, 4),
        "qps": round(len(lines) / elapsed, 1) if elapsed else float("inf"),
        "oracle_calls": oracle_calls,
        "responses": responses,
    }


def _loop_runner(stdin, stdout, delay_ms, theory_factory):
    pool = SessionPool(theory_factory=theory_factory)
    started = time.perf_counter()
    serve(stdin, stdout, pool=pool)
    return time.perf_counter() - started, _COUNT_IN_PROCESS


def _thread_runner(workers):
    def run(stdin, stdout, delay_ms, theory_factory):
        server = QueryServer(workers=workers, queue_limit=128,
                             theory_factory=theory_factory)
        server.start()
        try:
            started = time.perf_counter()
            serve_stdio(stdin, stdout, server=server)
            return time.perf_counter() - started, _COUNT_IN_PROCESS
        finally:
            server.shutdown(drain=True)

    return run


def _worker_oracle_calls(server):
    """Exact post-drain oracle-call total summed over the worker processes.

    The env-configured oracle wrapper counts into each worker's process-global
    metrics registry; ``refresh_stats`` pulls a fresh snapshot over the stats
    pipe (the periodic piggyback could trail by up to 15 responses), and the
    merged ``oracle_calls_total`` counter is the cluster-wide total.
    """
    server.backend.refresh_stats(timeout=60.0)
    merged = server.backend.worker_metrics()
    if merged is None:
        return None
    entries = merged.get("counters", {}).get("oracle_calls_total", [])
    return int(sum(entry["value"] for entry in entries))


def _process_runner(workers):
    def run(stdin, stdout, delay_ms, theory_factory):
        env = {"KMT_TEST_ORACLE_DELAY_MS": str(delay_ms),
               "KMT_TEST_ORACLE_THEORIES": ""}
        saved_env = {key: os.environ.get(key) for key in env}
        os.environ.update(env)
        try:
            server = QueryServer(workers=workers, backend="process", queue_limit=128,
                                 theory_factory_spec=TESTING_SPEC)
            server.start()
            try:
                # Spawn/import must not be charged to serving time — and a
                # pool that never came up must not be benchmarked at all.
                if not server.wait_ready(timeout=120):
                    raise AssertionError("process worker pool failed to become ready")
                started = time.perf_counter()
                serve_stdio(stdin, stdout, server=server)
                elapsed = time.perf_counter() - started
                # At zero delay the factory returns unwrapped theories —
                # nothing counts, and reporting 0 would read as "the workload
                # stopped exercising the oracle"; stay honest with null.
                oracle = _worker_oracle_calls(server) if delay_ms else None
                return elapsed, oracle
            finally:
                server.shutdown(drain=True)
        finally:
            for key, value in saved_env.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value

    return run


def _verify_responses(lines, results):
    """All ids answered exactly once per mode, verdicts identical across modes."""
    expected_ids = [json.loads(line)["id"] for line in lines]

    def verdicts(result):
        out = {}
        for response in result["responses"]:
            if not response.get("ok"):
                raise AssertionError(
                    f"{result['mode']}: request {response.get('id')} failed: "
                    f"{response.get('error')}")
            payload = response["result"]
            out[response["id"]] = payload.get("equivalent", payload.get("satisfiable"))
        return out

    reference = verdicts(results[0])
    if sorted(reference) != sorted(expected_ids):
        raise AssertionError(f"{results[0]['mode']}: id set mismatch")
    for result in results[1:]:
        got = verdicts(result)
        if got != reference:
            raise AssertionError(
                f"{result['mode']}: responses disagree with {results[0]['mode']}")
    return reference


def run_comparison(lines, delay_ms):
    delay = float(delay_ms)
    loop = _run_mode("single_loop", lines, delay, _loop_runner)
    one = _run_mode("server_1", lines, delay, _thread_runner(1))
    many = _run_mode(f"server_{WORKERS}", lines, delay, _thread_runner(WORKERS))
    proc = _run_mode(f"server_proc_{WORKERS}", lines, delay, _process_runner(WORKERS))
    _verify_responses(lines, [loop, one, many, proc])
    for result in (loop, one, many, proc):
        del result["responses"]  # verified; keep the artifact small
    return {
        "requests": len(lines),
        "oracle_delay_ms": delay,
        "modes": [loop, one, many, proc],
        "speedup_vs_single_loop": round(loop["seconds"] / many["seconds"], 2),
        "speedup_vs_one_worker": round(one["seconds"] / many["seconds"], 2),
        "process_speedup_vs_thread": round(many["seconds"] / proc["seconds"], 2),
    }


def _gate_process_speedup(pure, out=sys.stderr):
    """The pure-compute gate, honest about the hardware it ran on.

    Returns ``True`` when acceptable.  A parallel speedup needs parallel
    hardware: with 1 CPU the gate is reported as skipped, never fabricated.
    """
    speedup = pure["process_speedup_vs_thread"]
    if CPUS >= 4:
        required = PROCESS_SPEEDUP_TARGET
    elif CPUS >= 2:
        required = PROCESS_SPEEDUP_FLOOR
    else:
        print(f"# SKIPPED process-speedup gate: 1 CPU available, parallel "
              f"speedup impossible (measured {speedup}x)", file=out)
        return True
    if speedup < required:
        print(f"# FAIL: process backend {speedup}x < {required}x over the "
              f"thread backend on pure compute ({CPUS} CPUs)", file=out)
        return False
    print(f"# OK: process backend {speedup}x >= {required}x over the thread "
          f"backend on pure compute ({CPUS} CPUs)", file=out)
    return True


def run_all():
    simulated = run_comparison(make_workload(REQUESTS), ORACLE_DELAY_MS)
    # The honest CPU-bound regime: no oracle latency, ~10 ms real compute per
    # query.  Thread workers are GIL-serialized here; worker processes are
    # not (given the cores).
    pure = run_comparison(make_heavy_workload(HEAVY_REQUESTS), 0.0)
    return {
        "benchmark": "serve",
        "description": (
            "blocking single-threaded serve loop vs concurrent query server "
            "(shard affinity + session striping) on both execution backends "
            "(worker threads vs worker processes), mixed-theory workload; "
            "oracle latency models an out-of-process solver (GIL released)"
        ),
        "workers": WORKERS,
        "cpus": CPUS,
        "simulated_solver_oracle": simulated,
        "pure_compute": pure,
        "note": (
            "thread shards overlap GIL-releasing waits (oracle IPC, client I/O) "
            "but serialize pure in-process compute; worker processes parallelize "
            "pure compute across available cores — pure_compute uses a ~10ms-per-"
            "query CPU-bound workload and reports cpus so single-core runs are "
            "read honestly"
        ),
    }


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    smoke = "--smoke" in argv
    if smoke:
        report = run_comparison(make_workload(SMOKE_REQUESTS), ORACLE_DELAY_MS)
        pure = run_comparison(make_heavy_workload(SMOKE_HEAVY_REQUESTS), 0.0)
        report["pure_compute_smoke"] = pure
        print(json.dumps(report, indent=2, sort_keys=True))
        # CI gates: N thread workers must beat one worker on the oracle
        # workload, and the process backend must beat the thread backend on
        # pure compute (given the cores to do it with).
        ok = True
        if report["speedup_vs_one_worker"] <= 1.0:
            print(f"# FAIL: server_{WORKERS} did not beat server_1", file=sys.stderr)
            ok = False
        else:
            print(f"# OK: server_{WORKERS} beat server_1 by "
                  f"{report['speedup_vs_one_worker']}x", file=sys.stderr)
        if not _gate_process_speedup(pure):
            ok = False
        return 0 if ok else 1
    report = run_all()
    artifact = os.path.normpath(os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_serve.json"))
    with open(artifact, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"# wrote {artifact}")
    ok = True
    speedup = report["simulated_solver_oracle"]["speedup_vs_single_loop"]
    if speedup < ACCEPTANCE_SPEEDUP:
        print(f"# FAIL: {speedup}x < {ACCEPTANCE_SPEEDUP}x acceptance bar", file=sys.stderr)
        ok = False
    else:
        print(f"# OK: {speedup}x >= {ACCEPTANCE_SPEEDUP}x", file=sys.stderr)
    if not _gate_process_speedup(report["pure_compute"]):
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
