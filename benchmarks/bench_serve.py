"""Serving throughput: blocking single-threaded loop vs the concurrent server.

Replays one mixed-theory workload (incnat + bitvec + netkat equivalence and
satisfiability queries, mostly distinct with a deliberate tail of repeats)
through three serving configurations:

* ``single_loop`` — the legacy blocking stdio loop
  (:func:`repro.engine.batch.serve`): read a request, answer it, read the
  next.  This is the baseline the concurrent server replaces.
* ``server_1`` — :func:`repro.engine.server.serve_stdio` with one worker
  shard (concurrency machinery, no parallelism).
* ``server_4`` — four worker shards with session striping.

**Latency model.**  The client theory's conjunction/satisfiability oracle is
wrapped with a small per-call sleep (``ORACLE_DELAY_MS``, recorded in the
report as ``oracle_delay_ms``), modeling the out-of-process SMT solver the
paper's implementations actually call (Z3 over IPC) — that wait releases the
GIL, exactly like the real solver call would.
This is where worker shards win: oracle waits for different shards overlap.
The report also includes a ``pure_compute`` section with the sleep set to 0,
where CPython's GIL keeps pure-Python compute serialized and N workers
honestly buy ~nothing — the decision table in the README spells this out.

Every response in every mode is checked for *id correctness*: all request
ids answered exactly once, verdicts identical across modes, despite
out-of-order completion under ``server_4``.

Run directly to emit ``BENCH_serve.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_serve.py            # full (gate: >= 3x)
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke    # CI gate: 4 workers beat 1
"""

from __future__ import annotations

import io
import json
import os
import sys
import threading
import time

from repro.core import automata
from repro.engine.batch import SessionPool, serve
from repro.engine.cache import LRUCache
from repro.engine.server import serve_stdio
from repro.theories import build_theory

ORACLE_DELAY_MS = 6.0
WORKERS = 4
REQUESTS = 240  # >= 200-request acceptance workload (80 per theory)
SMOKE_REQUESTS = 60
ACCEPTANCE_SPEEDUP = 3.0


class OracleLatencyTheory:
    """Delegating theory wrapper adding per-oracle-call latency.

    Models an external solver process: each ``satisfiable_conjunction`` /
    ``satisfiable`` call sleeps ``delay_s`` (releasing the GIL, as real IPC
    would) before delegating.  ``counter`` tallies oracle calls so the report
    can show how much oracle work each configuration actually performed
    (striping repeats some of it — one memo per stripe — which the wall-clock
    numbers must beat anyway).
    """

    def __init__(self, inner, delay_s, counter):
        self._inner = inner
        self._delay_s = delay_s
        self._counter = counter

    def _pay(self):
        if self._delay_s > 0:
            time.sleep(self._delay_s)
        self._counter.bump()

    def satisfiable_conjunction(self, literals):
        self._pay()
        return self._inner.satisfiable_conjunction(literals)

    def satisfiable(self, pred):
        self._pay()
        return self._inner.satisfiable(pred)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class CallCounter:
    def __init__(self):
        self.calls = 0
        self._lock = threading.Lock()

    def bump(self):
        with self._lock:
            self.calls += 1


def make_workload(total):
    """``total`` JSONL request lines, ids ``q0..q{total-1}``, mixed theories."""
    lines = []
    index = 0

    def add(**fields):
        nonlocal index
        fields["id"] = f"q{index}"
        lines.append(json.dumps(fields))
        index += 1

    per_theory = total // 3

    def vary(i):
        # Mostly distinct queries (distinct atoms → real oracle work) with a
        # deliberate ~20% tail of repeats so the affinity/caching story is
        # exercised too: every 5th request replays an earlier one.
        return i // 5 if i % 5 == 4 else i

    for i in range(per_theory):
        k = vary(i) + 1
        if i % 2:
            # Two primitive tests under the guards → a real signature search
            # with several conjunction-oracle decisions per query.
            add(op="equiv", theory="incnat",
                left=f"x > {k}; inc(x); x > {k + 2}",
                right=f"x > {k}; x > {k - 1}; inc(x); x > {k + 2}")
        else:
            add(op="equiv", theory="incnat",
                left=f"inc(x); x > {k + 1}", right=f"x > {k}; inc(x)")
    for i in range(per_theory):
        k = vary(i)
        if i % 2:
            add(op="equiv", theory="bitvec",
                left=f"v{k} = T; flip v{k}", right=f"v{k} = T; flip v{k}; v{k} = F")
        else:
            add(op="sat", theory="bitvec", pred=f"v{k} = T + ~(v{k} = T)")
    for i in range(total - 2 * per_theory):
        k = vary(i)  # theory-local index, so the repeat tail really repeats
        add(op="equiv", theory="netkat",
            left=f"sw = {k}; sw <- {k + 1}", right=f"sw = {k}; sw <- {k + 1}; sw = {k + 1}")
    return lines


def _run_mode(name, lines, delay_s, runner):
    """Run one serving configuration on a fresh process-cache world.

    Each mode gets its own derivative memo (the real one is process-wide and
    would leak warm state from one mode into the next) and fresh sessions via
    a fresh latency-wrapped theory factory.
    """
    counter = CallCounter()

    def theory_factory(theory_name):
        return OracleLatencyTheory(build_theory(theory_name), delay_s, counter)

    saved = automata.get_derivative_cache()
    automata.set_derivative_cache(LRUCache(maxsize=65536, name="deriv"))
    try:
        stdin = io.StringIO("\n".join(lines) + "\n")
        stdout = io.StringIO()
        started = time.perf_counter()
        runner(stdin, stdout, theory_factory)
        elapsed = time.perf_counter() - started
    finally:
        automata.set_derivative_cache(saved)
    responses = [json.loads(line) for line in stdout.getvalue().splitlines()]
    return {
        "mode": name,
        "seconds": round(elapsed, 4),
        "qps": round(len(lines) / elapsed, 1) if elapsed else float("inf"),
        "oracle_calls": counter.calls,
        "responses": responses,
    }


def _loop_runner(stdin, stdout, theory_factory):
    pool = SessionPool(theory_factory=theory_factory)
    serve(stdin, stdout, pool=pool)


def _server_runner(workers):
    def run(stdin, stdout, theory_factory):
        serve_stdio(stdin, stdout, workers=workers, queue_limit=128,
                    theory_factory=theory_factory)

    return run


def _verify_responses(lines, results):
    """All ids answered exactly once per mode, verdicts identical across modes."""
    expected_ids = [json.loads(line)["id"] for line in lines]

    def verdicts(result):
        out = {}
        for response in result["responses"]:
            if not response.get("ok"):
                raise AssertionError(
                    f"{result['mode']}: request {response.get('id')} failed: "
                    f"{response.get('error')}")
            payload = response["result"]
            out[response["id"]] = payload.get("equivalent", payload.get("satisfiable"))
        return out

    reference = verdicts(results[0])
    if sorted(reference) != sorted(expected_ids):
        raise AssertionError(f"{results[0]['mode']}: id set mismatch")
    for result in results[1:]:
        got = verdicts(result)
        if got != reference:
            raise AssertionError(
                f"{result['mode']}: responses disagree with {results[0]['mode']}")
    return reference


def run_comparison(total, delay_ms):
    lines = make_workload(total)
    delay_s = delay_ms / 1000.0
    loop = _run_mode("single_loop", lines, delay_s, _loop_runner)
    one = _run_mode("server_1", lines, delay_s, _server_runner(1))
    many = _run_mode(f"server_{WORKERS}", lines, delay_s, _server_runner(WORKERS))
    _verify_responses(lines, [loop, one, many])
    for result in (loop, one, many):
        del result["responses"]  # verified; keep the artifact small
    return {
        "requests": total,
        "oracle_delay_ms": delay_ms,
        "modes": [loop, one, many],
        "speedup_vs_single_loop": round(loop["seconds"] / many["seconds"], 2),
        "speedup_vs_one_worker": round(one["seconds"] / many["seconds"], 2),
    }


def run_all(total=REQUESTS, delay_ms=ORACLE_DELAY_MS):
    simulated = run_comparison(total, delay_ms)
    # Honesty check: with no oracle latency, pure-Python compute under the
    # GIL serializes and extra workers buy ~nothing.  Reported, not gated.
    pure = run_comparison(total, 0.0)
    return {
        "benchmark": "serve",
        "description": (
            "blocking single-threaded serve loop vs concurrent query server "
            "(shard affinity + session striping), mixed-theory workload; "
            "oracle latency models an out-of-process solver (GIL released)"
        ),
        "workers": WORKERS,
        "simulated_solver_oracle": simulated,
        "pure_compute": pure,
        "note": (
            "thread shards overlap GIL-releasing waits (oracle IPC, client I/O); "
            "pure in-process compute on CPython stays serialized, see pure_compute"
        ),
    }


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    smoke = "--smoke" in argv
    if smoke:
        report = run_comparison(SMOKE_REQUESTS, ORACLE_DELAY_MS)
        print(json.dumps(report, indent=2, sort_keys=True))
        # CI gate: N workers must beat one worker on the mixed workload.
        if report["speedup_vs_one_worker"] <= 1.0:
            print(f"# FAIL: server_{WORKERS} did not beat server_1", file=sys.stderr)
            return 1
        print(f"# OK: server_{WORKERS} beat server_1 by "
              f"{report['speedup_vs_one_worker']}x", file=sys.stderr)
        return 0
    report = run_all()
    artifact = os.path.normpath(os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_serve.json"))
    with open(artifact, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"# wrote {artifact}")
    speedup = report["simulated_solver_oracle"]["speedup_vs_single_loop"]
    if speedup < ACCEPTANCE_SPEEDUP:
        print(f"# FAIL: {speedup}x < {ACCEPTANCE_SPEEDUP}x acceptance bar", file=sys.stderr)
        return 1
    print(f"# OK: {speedup}x >= {ACCEPTANCE_SPEEDUP}x", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
