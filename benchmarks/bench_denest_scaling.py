"""Section 5 scaling claim: normal forms of guarded-sum loops grow explosively.

The paper discusses the loop ``(x1=F; x1:=T + ... + xn=F; xn:=T)*`` and reports
that the number of disjunctions in the *locally unambiguous form* grows as
4, 16, 512, 65536 for n = 1..4 (roughly O(2^(2^n))).  The quantity our decision
procedure materialises is the set of satisfiable primitive-test cells times the
summands of the normal form; this benchmark measures, for n = 1..3:

* the time to normalize the loop,
* the size of the resulting normal form, and
* the number of cells the decision procedure explores to prove the loop
  equivalent to itself,

so the super-exponential trend (not the absolute constants) can be compared
with the paper's 4 / 16 / 512 series.  n = 4 is far out of reach for this
implementation, as the paper's own numbers predict.
"""

import pytest

from repro.core.kmt import KMT
from repro.core.pushback import normalize_with_stats

from benchmarks.conftest import one_way_flip_loop


@pytest.mark.parametrize("n", [1, 2, 3])
def test_denest_normalization_scaling(benchmark, n):
    term, theory = one_way_flip_loop(n)

    def normalize():
        nf, stats = normalize_with_stats(term, theory, budget=5_000_000)
        return nf, stats

    nf, stats = benchmark(normalize)
    benchmark.extra_info["normal_form_summands"] = len(nf)
    benchmark.extra_info["pushback_steps"] = stats.steps
    benchmark.extra_info["denests"] = stats.denests
    assert len(nf) >= n + 1


@pytest.mark.parametrize("n", [1, 2, 3])
def test_denest_decision_cells_scaling(benchmark, n):
    # The 2^n satisfiable-cell count is a property of the explicit enumerator;
    # the signature search is measured in benchmarks/bench_cell_search.py.
    term, theory = one_way_flip_loop(n)
    kmt = KMT(theory, budget=5_000_000, cell_search="enumerate")

    def decide():
        return kmt.check_equivalent(term, term)

    result = benchmark.pedantic(decide, rounds=1, iterations=1)
    benchmark.extra_info["cells_explored"] = result.cells_explored
    benchmark.extra_info["cells_pruned"] = result.cells_pruned
    assert result.equivalent
    # The satisfiable-cell count doubles with every extra variable (2^n).
    assert result.cells_explored == 2 ** n


@pytest.mark.parametrize("n", [1, 2, 3])
def test_denest_decision_signature_scaling(benchmark, n):
    """The signature search never compares more than the enumerator's cells."""
    term, theory = one_way_flip_loop(n)
    kmt = KMT(theory, budget=5_000_000)

    def decide():
        return kmt.check_equivalent(term, term)

    result = benchmark.pedantic(decide, rounds=1, iterations=1)
    benchmark.extra_info["signatures_explored"] = result.signatures_explored
    benchmark.extra_info["language_compares"] = result.cells_explored
    assert result.equivalent
    assert result.cells_explored <= 2 ** n
