"""Cold one-shot KMT vs. warm EngineSession on repeated equivalence workloads.

The engine's pitch is amortization: repeated and overlapping queries — the
dominant pattern for a served workload — should reuse normalization, oracle
and automata work instead of re-deriving everything per query.  This harness
measures exactly that, across three theories:

* **cold** — a fresh :class:`~repro.core.kmt.KMT` per query with the shared
  derivative cache disabled, i.e. the seed's one-shot pipeline;
* **warm** — one persistent :class:`~repro.engine.session.EngineSession`
  answering the same query stream.

Run directly to emit the ``BENCH_engine.json`` artifact at the repo root::

    PYTHONPATH=src python benchmarks/bench_engine_cache.py

Also collectable with pytest (``test_warm_session_speedup``) as a regression
guard on the speedup.
"""

from __future__ import annotations

import json
import os
import time

from repro.core import automata
from repro.core.kmt import KMT
from repro.engine.session import EngineSession
from repro.theories import build_theory

#: Per theory: a small pool of equivalence queries, cycled ``REPEATS`` times —
#: the "repeated/overlapping queries" shape the engine exists for.
WORKLOADS = {
    "incnat": [
        ("inc(x); x > 1", "x > 0; inc(x)"),
        ("inc(x)*; x > 4", "inc(x)*; inc(x)*; x > 4"),
        ("x > 2; inc(x)", "x > 2; x > 1; inc(x)"),
        ("inc(x); inc(x); x > 2", "x > 0; inc(x); inc(x)"),
        ("x > 1", "x > 2"),
    ],
    "bitvec": [
        ("a := T; a = T", "a := T"),
        ("flip a; flip a; a = T", "a = T; flip a; flip a"),
        ("(a := T)*; a = T", "(a := T)*; a := T; a = T + a = T"),
        ("a := F; a = T", "a := F; a = T; a = T"),
        ("a = T + ~(a = T)", "1"),
    ],
    "netkat": [
        ("sw <- 1; sw = 1", "sw <- 1"),
        ("sw = 1; sw <- 2", "sw = 1; sw <- 2; sw = 2"),
        ("sw <- 1 + sw <- 2", "sw <- 2 + sw <- 1"),
        ("sw = 1; sw = 2", "drop"),
        ("(sw <- 1)*; sw = 1", "(sw <- 1)*; sw <- 1"),
    ],
}

REPEATS = 20  # 5 pairs x 20 = 100 queries per theory


def _queries(theory_name):
    return WORKLOADS[theory_name] * REPEATS


def run_cold(theory_name):
    """One-shot pipeline: fresh KMT per query, no shared caches."""
    saved = automata.get_derivative_cache()
    automata.set_derivative_cache(None)
    try:
        started = time.perf_counter()
        verdicts = []
        for left, right in _queries(theory_name):
            kmt = KMT(build_theory(theory_name))
            verdicts.append(kmt.equivalent(left, right))
        return time.perf_counter() - started, verdicts
    finally:
        automata.set_derivative_cache(saved)


def run_warm(theory_name):
    """One persistent session answering the same query stream."""
    session = EngineSession(build_theory(theory_name))
    started = time.perf_counter()
    verdicts = [session.equivalent(left, right) for left, right in _queries(theory_name)]
    return time.perf_counter() - started, verdicts, session


def run_theory(theory_name):
    cold_seconds, cold_verdicts = run_cold(theory_name)
    warm_seconds, warm_verdicts, session = run_warm(theory_name)
    if cold_verdicts != warm_verdicts:
        raise AssertionError(f"cold/warm verdicts disagree for {theory_name!r}")
    queries = len(cold_verdicts)
    stats = session.stats()
    return {
        "queries": queries,
        "cold_seconds": round(cold_seconds, 6),
        "warm_seconds": round(warm_seconds, 6),
        "speedup": round(cold_seconds / warm_seconds, 2) if warm_seconds else float("inf"),
        "cold_qps": round(queries / cold_seconds, 1) if cold_seconds else float("inf"),
        "warm_qps": round(queries / warm_seconds, 1) if warm_seconds else float("inf"),
        "warm_cache_hit_rates": {
            name: table["hit_rate"] for name, table in stats["tables"].items()
        },
    }


def run_all():
    results = {name: run_theory(name) for name in WORKLOADS}
    return {
        "benchmark": "engine_cache",
        "description": "cold one-shot KMT vs warm EngineSession, repeated equivalence queries",
        "repeats": REPEATS,
        "theories": results,
        "best_speedup": max(r["speedup"] for r in results.values()),
    }


def main():
    report = run_all()
    artifact = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_engine.json")
    artifact = os.path.normpath(artifact)
    with open(artifact, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"# wrote {artifact}")
    return 0 if report["best_speedup"] >= 3.0 else 1


def test_warm_session_speedup():
    """Warm sessions must beat cold one-shot KMT clearly on some theory.

    The acceptance bar is 3x; assert a softer 1.5x here so the regression
    guard is robust to noisy CI machines, and leave the full report to
    ``python benchmarks/bench_engine_cache.py``.
    """
    report = run_all()
    assert report["best_speedup"] >= 1.5


if __name__ == "__main__":
    raise SystemExit(main())
