"""Signature-guided cell search vs. the explicit cell enumerator.

The decision procedure's hot loop compares the two normal forms once per
Boolean cell of primitive tests; the legacy enumerator
(``cell_search="enumerate"``) pays one ``language_compare`` per satisfiable
cell — exponential in the number of distinct atoms.  The solver-guided search
(``cell_search="signature"``, the default) instead enumerates only the
realizable *guard activation signatures*, so cells that enable the same
summands are decided by a single comparison.

The workload is the paper's nested-sums-under-star shape: a one-way flip loop
``(x1 = F; x1 := T + ... + xm = F; xm := T)*`` (the Section 5 scaling family)
behind a shared guard context ``c1 = T; ...; cn = T``, compared against its
star-squared variant (``p; L`` vs ``p; L; L`` — equivalent by ``m*; m* ==
m*``).  The context atoms multiply the enumerator's cell count by ``2^n``
while leaving the signature count untouched.  A second family runs the same
shape over IncNat, where the enumerator's theory pruning is actually active
(bound chains prune ``2^n`` cells down to ``n+1``) — the signature search
still wins.

Run directly to emit the ``BENCH_decision.json`` artifact at the repo root::

    PYTHONPATH=src python benchmarks/bench_cell_search.py            # full
    PYTHONPATH=src python benchmarks/bench_cell_search.py --smoke    # CI gate

The full run fails (exit 1) unless the signature search performs strictly
fewer comparisons at every size and is >= 5x faster at the largest size; the
smoke run only checks the comparison counts, which are deterministic.  Also
collectable with pytest as a regression guard.
"""

from __future__ import annotations

import json
import os
import sys
import time

from repro.core import terms as T
from repro.core.decision import EquivalenceChecker
from repro.core.pushback import Normalizer
from repro.theories.bitvec import BitVecTheory
from repro.theories.incnat import IncNatTheory

#: (context atoms n, loop variables m) per size, smallest to largest.
BITVEC_SIZES = [(2, 1), (4, 2), (6, 2), (8, 3)]
SMOKE_BITVEC_SIZES = [(3, 1), (4, 2)]
#: Length of the IncNat bound chain guarding the loop.
INCNAT_SIZES = [2, 4, 8, 12]
SMOKE_INCNAT_SIZES = [2, 4]

SPEEDUP_TARGET = 5.0


def _guard_context(theory, n):
    """``c1 = T; ...; cn = T`` — shared context atoms over fresh variables."""
    out = T.tone()
    for index in range(1, n + 1):
        out = T.tseq(out, T.ttest(theory.eq(f"c{index}", True)))
    return out


def _flip_sum_loop(theory, m):
    """The Section 5 family: ``(x1 = F; x1 := T + ... + xm = F; xm := T)*``."""
    summands = [
        T.tseq(T.ttest(theory.eq(f"x{index}", False)), theory.assign(f"x{index}", True))
        for index in range(1, m + 1)
    ]
    return T.tstar(T.tplus_all(summands))


def bitvec_pair(n, m):
    theory = BitVecTheory()
    context = _guard_context(theory, n)
    loop = _flip_sum_loop(theory, m)
    left = T.tseq(context, loop)
    right = T.tseq(context, T.tseq(loop, loop))
    return theory, left, right


def incnat_pair(n):
    theory = IncNatTheory()
    context = T.tone()
    for bound in range(1, n + 1):
        context = T.tseq(context, T.ttest(theory.gt("x", bound)))
    loop = T.tstar(theory.inc("y"))
    left = T.tseq(context, loop)
    right = T.tseq(context, T.tseq(loop, loop))
    return theory, left, right


def _measure(theory, left, right):
    """Decision-procedure cost per mode over pre-normalized inputs.

    Normalization is identical for both modes, so it runs once outside the
    timers; each mode gets a fresh checker (no cross-mode memo leakage).
    """
    normalizer = Normalizer(theory, budget=5_000_000)
    x, y = normalizer.normalize(left), normalizer.normalize(right)
    row = {}
    for mode in ("enumerate", "signature"):
        checker = EquivalenceChecker(theory, cell_search=mode)
        started = time.perf_counter()
        result = checker.check_equivalent_nf(x, y)
        elapsed = time.perf_counter() - started
        if not result.equivalent:
            raise AssertionError(f"benchmark pair unexpectedly inequivalent ({mode})")
        row[mode] = {
            "seconds": round(elapsed, 6),
            "language_compares": result.cells_explored,
            "cells_pruned": result.cells_pruned,
            "signatures_explored": result.signatures_explored,
        }
    enum_row, sig_row = row["enumerate"], row["signature"]
    row["compare_ratio"] = (
        round(enum_row["language_compares"] / sig_row["language_compares"], 2)
        if sig_row["language_compares"]
        else float("inf")
    )
    row["speedup"] = (
        round(enum_row["seconds"] / sig_row["seconds"], 2)
        if sig_row["seconds"]
        else float("inf")
    )
    return row


def run_family(builder, sizes):
    rows = []
    for size in sizes:
        theory, left, right = builder(*size) if isinstance(size, tuple) else builder(size)
        row = _measure(theory, left, right)
        row["size"] = list(size) if isinstance(size, tuple) else size
        rows.append(row)
    return rows


def run_all(smoke=False):
    families = {
        "bitvec_nested_star": run_family(
            bitvec_pair, SMOKE_BITVEC_SIZES if smoke else BITVEC_SIZES
        ),
        "incnat_guard_chain": run_family(
            incnat_pair, SMOKE_INCNAT_SIZES if smoke else INCNAT_SIZES
        ),
    }
    largest = families["bitvec_nested_star"][-1]
    return {
        "benchmark": "cell_search",
        "description": (
            "signature-guided guard search vs explicit cell enumeration on the "
            "nested-sums-under-star family (language_compare calls + wall clock)"
        ),
        "smoke": smoke,
        "families": families,
        "largest_speedup": largest["speedup"],
        "largest_compare_ratio": largest["compare_ratio"],
    }


def check_report(report, require_speedup=True):
    """The acceptance gates; returns a list of failure strings."""
    failures = []
    for family, rows in report["families"].items():
        for row in rows:
            if row["signature"]["language_compares"] >= row["enumerate"]["language_compares"]:
                failures.append(
                    f"{family} size {row['size']}: signature search performed "
                    f"{row['signature']['language_compares']} comparisons, "
                    f"enumerator {row['enumerate']['language_compares']}"
                )
    if require_speedup and report["largest_speedup"] < SPEEDUP_TARGET:
        failures.append(
            f"largest-size speedup {report['largest_speedup']}x "
            f"below the {SPEEDUP_TARGET}x target"
        )
    return failures


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    smoke = "--smoke" in argv
    report = run_all(smoke=smoke)
    artifact = os.path.normpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_decision.json")
    )
    if not smoke:
        with open(artifact, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    if not smoke:
        print(f"# wrote {artifact}")
    # Wall-clock is only gated on the full run; the smoke lane (CI) checks the
    # deterministic comparison counts.
    failures = check_report(report, require_speedup=not smoke)
    for failure in failures:
        print(f"# FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def test_signature_search_beats_enumerator():
    """Regression guard: strictly fewer comparisons at every smoke size."""
    report = run_all(smoke=True)
    assert check_report(report, require_speedup=False) == []


if __name__ == "__main__":
    raise SystemExit(main())
