"""Shared builders for the benchmark harness.

Every benchmark constructs its KMT instances through the helpers here so the
terms being measured are exactly the ones listed in DESIGN.md's experiment
index (and so the ablation benchmarks can rebuild the same workloads with
different configurations).
"""

from __future__ import annotations

import random

import pytest

from repro.core import terms as T
from repro.core.kmt import KMT
from repro.theories.bitvec import BitVecTheory
from repro.theories.incnat import Gt, IncNatTheory
from repro.theories.ltlf import LtlfTheory
from repro.theories.maps import MapTheory, NatBoolMapAdapter
from repro.theories.netkat import NetKatTheory
from repro.theories.product import ProductTheory
from repro.theories.sets import NatExpressionAdapter, SetTheory
from repro.theories.temporal_netkat import temporal_netkat


@pytest.fixture
def kmt_incnat():
    return KMT(IncNatTheory())


@pytest.fixture
def kmt_bitvec():
    return KMT(BitVecTheory())


@pytest.fixture
def kmt_product():
    return KMT(ProductTheory(IncNatTheory(), BitVecTheory()))


@pytest.fixture
def kmt_ltlf_nat():
    return KMT(LtlfTheory(IncNatTheory()))


@pytest.fixture
def kmt_temporal_netkat():
    return KMT(temporal_netkat({"sw": (1, 2, 3), "dst": (1, 2)}))


@pytest.fixture
def kmt_sets():
    nat = IncNatTheory(variables=("i",))
    adapter = NatExpressionAdapter(nat, variables=("i",))
    return KMT(SetTheory(nat, adapter, set_variables=("X",)))


@pytest.fixture
def kmt_maps():
    nat = IncNatTheory(variables=("i",))
    bools = BitVecTheory(variables=("parity",))
    inner = ProductTheory(nat, bools)
    adapter = NatBoolMapAdapter(nat, bools, key_variables=("i",), value_variables=("parity",))
    return KMT(MapTheory(inner, adapter, map_variables=("odd",)))


def random_arithmetic_predicate(seed=2022, variables=("x", "y"), max_bound=20, size=4):
    """Fig. 9 row 1's "random arithmetic predicate" over the IncNat theory.

    A fixed seed keeps the benchmark deterministic across runs while still
    exercising a non-trivial Boolean combination of bound tests.
    """
    rng = random.Random(seed)

    def leaf():
        return T.pprim(Gt(rng.choice(variables), rng.randint(0, max_bound)))

    pred = leaf()
    for _ in range(size - 1):
        connective = rng.choice(("and", "or", "not"))
        if connective == "and":
            pred = T.pand(pred, leaf())
        elif connective == "or":
            pred = T.por(pred, leaf())
        else:
            pred = T.pnot(pred)
    return pred


def one_way_flip_loop(n):
    """The Section 5 scaling family: (x1=F; x1:=T + ... + xn=F; xn:=T)*."""
    theory = BitVecTheory()
    summands = []
    for index in range(1, n + 1):
        var = f"x{index}"
        summands.append(
            T.tseq(T.ttest(theory.eq(var, False)), theory.assign(var, True))
        )
    return T.tstar(T.tplus_all(summands)), theory


def flip_loop(variables):
    """The Fig. 9 row 7 blow-up: (flip x + flip y + ...)*."""
    theory = BitVecTheory()
    return T.tstar(T.tplus_all(theory.flip(var) for var in variables)), theory
