"""Persistent snapshot tier: cold restart vs snapshot-warmed restart.

The question: after a server restart (deploy, rollout, crash), how much of
the cache warmth built by past queries does the snapshot tier actually give
back?  Both lanes run the *same* query set — the nested-sums-under-star
family also used by ``bench_compile.py`` — in a **fresh spawned subprocess**,
because an in-process "restart" is a lie: the process-wide derivative memo,
the hash-consed term arena and the fingerprint registry would all stay warm
and flatter the cold lane.

1. **Seed lane** (subprocess): a cold session pool answers every query, then
   exports its caches through :class:`repro.engine.persist.SnapshotStore`.
   Its query time *is* the cold-restart cost.
2. **Warm lane** (subprocess): a fresh pool imports the snapshot first, then
   answers the same queries.  The deterministic gates: every verdict matches
   the cold lane, the warm lane compiles **zero** automaton states, and every
   equivalence query is answered from the imported ``equiv`` memo.  The full
   run additionally gates the wall-clock ratio at
   :data:`SNAPSHOT_SPEEDUP_TARGET`.

Run directly to emit the ``BENCH_persist.json`` artifact at the repo root::

    PYTHONPATH=src python benchmarks/bench_persist.py            # full
    PYTHONPATH=src python benchmarks/bench_persist.py --smoke    # CI gate

Also collectable with pytest as a regression guard (deterministic gates
only — wall clock is never gated in the smoke/pytest lane).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import sys
import tempfile
import time

#: (loop summands m, chain depth d) — the ``bench_compile.py`` scaling family.
SIZES = [(1, 2), (2, 2), (2, 4), (2, 6), (2, 8)]
SMOKE_SIZES = [(1, 2), (2, 2)]

#: Full-run gate: total warm-restart query time vs total cold-restart time.
SNAPSHOT_SPEEDUP_TARGET = 10.0

THEORY_PRESET = "bitvec"


def family_source(m, d):
    """``(x1 = F; y1_1 := T; ... + ...)*`` vs its self-sequencing, as source.

    Source text (not terms) on purpose: snapshots key entries by concrete
    syntax, and a restarted server receives queries as protocol text — this
    is exactly the code path a warm start must hit.
    """
    summands = []
    for index in range(1, m + 1):
        parts = [f"x{index} = F"]
        parts.extend(f"y{index}_{depth} := T" for depth in range(1, d + 1))
        summands.append("; ".join(parts))
    loop = "(" + " + ".join(summands) + ")*"
    return loop, loop + "; " + loop


def query_set(sizes):
    return [family_source(m, d) for m, d in sizes]


def _run_lane(sizes, snapshot_path, warm, out_path):
    """Subprocess body: (optionally) import the snapshot, answer every query.

    Timing starts after imports: both lanes pay identical interpreter and
    module-import cost, and including it would only dilute the number the
    snapshot tier is responsible for.  The snapshot *load* is part of the
    warm lane's measured time — warm start is only a win if load + warm
    queries beats cold queries.
    """
    from repro.engine.batch import SessionPool
    from repro.engine.persist import SnapshotStore

    queries = query_set(sizes)
    started = time.perf_counter()
    pool = SessionPool()
    load_seconds = None
    if warm:
        pool.import_snapshot(SnapshotStore(snapshot_path).load())
        load_seconds = time.perf_counter() - started
    session = pool.session(THEORY_PRESET)
    verdicts = []
    first_seconds = None
    for left, right in queries:
        verdicts.append(bool(session.check_equivalent(left, right).equivalent))
        if first_seconds is None:
            first_seconds = time.perf_counter() - started
    total_seconds = time.perf_counter() - started
    if not warm:
        SnapshotStore(snapshot_path).save(pool.export_snapshot())
    tables = session.stats(include_shared=False)["tables"]
    report = {
        "verdicts": verdicts,
        "seconds": round(total_seconds, 6),
        "first_answer_seconds": round(first_seconds, 6),
        "load_seconds": round(load_seconds, 6) if load_seconds is not None else None,
        "states_compiled": session.kmt.checker.states_compiled,
        "equiv_hits": tables["equiv"]["hits"],
        "aut_puts": tables["aut"]["puts"],
    }
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle)


def _spawn_lane(ctx, sizes, snapshot_path, warm, workdir):
    out_path = os.path.join(workdir, "warm.json" if warm else "cold.json")
    process = ctx.Process(
        target=_run_lane, args=(sizes, snapshot_path, warm, out_path))
    process.start()
    process.join(timeout=600)
    if process.is_alive():
        process.kill()
        process.join()
        raise RuntimeError("benchmark lane subprocess hung")
    if process.exitcode != 0:
        raise RuntimeError(f"benchmark lane subprocess failed ({process.exitcode})")
    with open(out_path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def run_all(smoke=False):
    sizes = SMOKE_SIZES if smoke else SIZES
    # spawn, not fork: a forked child inherits this process's warm memos and
    # the cold lane stops being cold.
    ctx = multiprocessing.get_context("spawn")
    with tempfile.TemporaryDirectory(prefix="kmt-bench-persist-") as workdir:
        snapshot_path = os.path.join(workdir, "snapshot.json")
        cold = _spawn_lane(ctx, sizes, snapshot_path, False, workdir)
        snapshot_bytes = os.path.getsize(snapshot_path)
        warm = _spawn_lane(ctx, sizes, snapshot_path, True, workdir)
    speedup = (
        round(cold["seconds"] / warm["seconds"], 2) if warm["seconds"] else float("inf")
    )
    return {
        "benchmark": "persist",
        "description": (
            "cold restart vs snapshot-warmed restart (fresh spawned "
            "subprocess each) on the nested-sums-under-star family"
        ),
        "smoke": smoke,
        "sizes": [list(size) for size in sizes],
        "queries": len(sizes),
        "snapshot_bytes": snapshot_bytes,
        "cold_restart": cold,
        "snapshot_restart": warm,
        "restart_speedup": speedup,
    }


def check_report(report, require_speedup=True):
    """The acceptance gates; returns a list of failure strings."""
    failures = []
    cold, warm = report["cold_restart"], report["snapshot_restart"]
    if warm["verdicts"] != cold["verdicts"]:
        failures.append(
            f"snapshot restart changed verdicts: {cold['verdicts']} -> {warm['verdicts']}")
    if not all(cold["verdicts"]):
        failures.append("benchmark pairs unexpectedly inequivalent")
    if cold["states_compiled"] <= 0:
        failures.append("cold restart compiled no automata (workload too small)")
    if warm["states_compiled"] != 0:
        failures.append(
            f"snapshot restart compiled {warm['states_compiled']} states "
            "instead of answering from the imported caches")
    if warm["equiv_hits"] < report["queries"]:
        failures.append(
            f"snapshot restart answered only {warm['equiv_hits']}/"
            f"{report['queries']} queries from the imported equiv memo")
    if warm["aut_puts"] <= 0:
        failures.append("snapshot restart imported no compiled automata")
    if require_speedup and report["restart_speedup"] < SNAPSHOT_SPEEDUP_TARGET:
        failures.append(
            f"snapshot-restart speedup {report['restart_speedup']}x below "
            f"the {SNAPSHOT_SPEEDUP_TARGET}x target")
    return failures


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    smoke = "--smoke" in argv
    report = run_all(smoke=smoke)
    artifact = os.path.normpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_persist.json")
    )
    # The smoke lane writes the artifact too (CI uploads it); the committed
    # copy always comes from a full run, recognizable by ``"smoke": false``.
    with open(artifact, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"# wrote {artifact}")
    # Wall clock is only gated on the full run; the smoke lane (CI) checks
    # the deterministic compiled-states / memo-hit counters.
    failures = check_report(report, require_speedup=not smoke)
    for failure in failures:
        print(f"# FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def test_snapshot_restart_reuses_caches():
    """Regression guard: a snapshot-warmed restart never recompiles."""
    report = run_all(smoke=True)
    assert check_report(report, require_speedup=False) == []


if __name__ == "__main__":
    raise SystemExit(main())
