"""Benchmark harness reproducing every table/figure of the paper's evaluation."""
