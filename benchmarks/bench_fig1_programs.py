"""Fig. 1: the motivating While programs, verified end to end.

The paper uses Pnat / Pset / Pmap (Fig. 1a–c) to motivate the theories it then
builds (naturals, sets, maps).  These benchmarks measure the full pipeline on
each program — parse the While source, compile to a KMT term, and prove the
trailing assert redundant — with the loop constants scaled down so a single
verification stays in the seconds range (the paper never reports numbers for
Fig. 1; EXPERIMENTS.md records what we measure).
"""

import pytest

from repro.core.kmt import KMT
from repro.lang import parse_program
from repro.theories.bitvec import BitVecTheory
from repro.theories.incnat import IncNatTheory
from repro.theories.maps import MapTheory, NatBoolMapAdapter
from repro.theories.product import ProductTheory
from repro.theories.sets import NatExpressionAdapter, SetTheory

PNAT_BODY = """
assume i < 2;
while (i < 4) {
    inc(i);
    inc(j); inc(j);
}
"""

PSET_BODY = """
assume i < 1;
while (i < 4) {
    add(X, i);
    inc(i);
}
"""

PMAP_BODY = """
i := 0;
parity := F;
while (i < 4) {
    odd[i] := parity;
    inc(i);
    flip parity;
}
"""


def test_pnat(benchmark):
    """Fig. 1(a): the assert j > 3 after the counting loop never fires."""
    theory = IncNatTheory(variables=("i", "j"))
    kmt = KMT(theory)

    def verify():
        program = parse_program(PNAT_BODY + "assert j > 3;", theory).compile()
        stripped = parse_program(PNAT_BODY, theory).compile()
        return kmt.equivalent(program, stripped)

    assert benchmark(verify) is True


def test_pset(benchmark):
    """Fig. 1(b): after inserting 0..3 into X, in(X, 3) always holds."""
    nat = IncNatTheory(variables=("i",))
    adapter = NatExpressionAdapter(nat, variables=("i",))
    theory = SetTheory(nat, adapter, set_variables=("X",))
    kmt = KMT(theory)

    def verify():
        program = parse_program(PSET_BODY + "assert in(X, 3);", theory).compile()
        stripped = parse_program(PSET_BODY, theory).compile()
        return kmt.equivalent(program, stripped)

    assert benchmark(verify) is True


def test_pset_unbounded_membership(benchmark, kmt_sets):
    """The Section 2.3 claim: (inc i; add(X,i))*; i > N; in(X, N) is non-empty."""

    def verify():
        return kmt_sets.is_empty("(inc(i); add(X, i))*; i > 6; in(X, 6)")

    assert benchmark(verify) is False


def test_pmap(benchmark):
    """Fig. 1(c): after the parity loop, odd[3] = T always holds."""
    nat = IncNatTheory(variables=("i",))
    bools = BitVecTheory(variables=("parity",))
    inner = ProductTheory(nat, bools)
    adapter = NatBoolMapAdapter(nat, bools, key_variables=("i",), value_variables=("parity",))
    theory = MapTheory(inner, adapter, map_variables=("odd",))
    kmt = KMT(theory)

    def verify():
        program = parse_program(PMAP_BODY + "assert odd[3] = T;", theory).compile()
        stripped = parse_program(PMAP_BODY, theory).compile()
        return kmt.equivalent(program, stripped)

    result = benchmark.pedantic(verify, rounds=2, iterations=1)
    assert result is True
