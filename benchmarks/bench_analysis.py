"""Edit-recheck loop over the analysis ops: cold sessions vs one warm session.

The workload an IDE-shaped client generates is *edit-recheck*: the same
program re-verified after small edits, interleaved with dead-code sweeps.
Consecutive revisions share almost all of their normal forms, signatures and
automata, so a warm :class:`~repro.engine.session.EngineSession` should beat
a cold session-per-revision loop clearly — that ratio is this benchmark's
gate (> 1 in ``--smoke`` mode, and the report records the full number).

The program under edit is the paper's Fig. 1a counting loop (Pnat); the
"edits" mutate the assumed entry bound, the loop bound and the asserted
postcondition the way a user nudging constants would.

Run directly to emit the ``BENCH_analysis.json`` artifact at the repo root::

    PYTHONPATH=src python benchmarks/bench_analysis.py            # full
    PYTHONPATH=src python benchmarks/bench_analysis.py --smoke    # CI gate
"""

from __future__ import annotations

import json
import os
import sys
import time

from repro.engine.session import EngineSession
from repro.theories.incnat import IncNatTheory

PRE = "i < 2"

PROGRAM = """\
while (i < {loop_bound}) {{
    i += 1;
    j += 2;
}}
"""

DEAD_PROBE = """\
assume i > 4;
if (i < 3) {{
    i += 1;
}}
while (i < {loop_bound}) {{
    j += 2;
}}
"""


def revisions(rounds):
    """The edit stream: (program, post) pairs cycling through small nudges.

    Every revision reuses one of a handful of loop bounds, so a warm session
    sees each distinct program text (and its compiled term) many times —
    exactly the overlap an edit-recheck loop produces.
    """
    out = []
    for round_index in range(rounds):
        loop_bound = 4 + (round_index % 3)        # 4, 5, 6, 4, ...
        post_bound = 3 + (round_index % 4)        # j > 3..6
        out.append((PROGRAM.format(loop_bound=loop_bound), f"j > {post_bound}"))
    return out


def run_session(session, stream):
    verdicts = []
    for program, post in stream:
        verdicts.append(session.verify(PRE, program, post)["holds"])
        verdicts.append(session.dead_code(
            DEAD_PROBE.format(loop_bound=4))["dead"])
    return verdicts


def fresh_session():
    return EngineSession(IncNatTheory(variables=("i", "j")))


def run_cold(stream):
    """Session-per-revision: every recheck pays parse+normalize+search again."""
    started = time.perf_counter()
    verdicts = []
    for revision in stream:
        verdicts.extend(run_session(fresh_session(), [revision]))
    return time.perf_counter() - started, verdicts


def run_warm(stream):
    """One persistent session across the whole edit stream."""
    session = fresh_session()
    started = time.perf_counter()
    verdicts = run_session(session, stream)
    return time.perf_counter() - started, verdicts, session


def run_all(rounds):
    stream = revisions(rounds)
    cold_seconds, cold_verdicts = run_cold(stream)
    warm_seconds, warm_verdicts, session = run_warm(stream)
    if cold_verdicts != warm_verdicts:
        raise AssertionError("cold/warm verdicts disagree")
    stats = session.stats()
    checks = len(cold_verdicts)
    return {
        "benchmark": "analysis_edit_recheck",
        "description": "cold session-per-revision vs one warm session over an "
                       "edit-recheck stream of verify + dead_code on Fig. 1a",
        "rounds": rounds,
        "checks": checks,
        "cold_seconds": round(cold_seconds, 6),
        "warm_seconds": round(warm_seconds, 6),
        "warm_over_cold_ratio": round(cold_seconds / warm_seconds, 2)
        if warm_seconds else float("inf"),
        "cold_cps": round(checks / cold_seconds, 1) if cold_seconds else float("inf"),
        "warm_cps": round(checks / warm_seconds, 1) if warm_seconds else float("inf"),
        "warm_cache_hit_rates": {
            name: table["hit_rate"] for name, table in stats["tables"].items()
        },
    }


def main(argv):
    smoke = "--smoke" in argv
    report = run_all(rounds=12 if smoke else 60)
    report["smoke"] = smoke
    artifact = os.path.normpath(os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_analysis.json"))
    with open(artifact, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"# wrote {artifact}")
    # The gate: re-checking with a warm session must actually amortize.
    return 0 if report["warm_over_cold_ratio"] > 1.0 else 1


def test_edit_recheck_amortizes():
    """Pytest-collectable regression guard on the warm/cold ratio."""
    report = run_all(rounds=8)
    assert report["warm_over_cold_ratio"] > 1.0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
