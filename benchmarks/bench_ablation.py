"""Ablation benchmarks for the design choices called out in DESIGN.md.

Three ablations, each comparing the shipped configuration against a degraded
one on the same workload:

1. smart constructors on/off during normalization (Section 4.1's first
   optimization);
2. the custom bounds-based IncNat satisfiability oracle vs. naive enumeration
   of assignments (Section 4.1's "custom solvers beat the Z3 embedding");
3. unsatisfiable-cell pruning in the decision procedure on vs. off.

The benchmark names encode the configuration so `pytest-benchmark`'s
comparison output lines the pairs up.
"""

import pytest

from repro.core import terms as T
from repro.core.decision import EquivalenceChecker
from repro.core.pushback import normalize
from repro.core.terms import smart_constructors_disabled
from repro.smt.dpll import dpll_satisfiable, naive_satisfiable
from repro.theories.incnat import Gt, IncNatTheory
from repro.core.kmt import KMT


# ---------------------------------------------------------------------------
# 1. smart constructors
# ---------------------------------------------------------------------------


def _normalization_workload(kmt):
    return kmt.parse("x < 2; (x < 4; inc(x); inc(y))*; ~(x < 4); y > 1")


def test_ablation_smart_constructors_on(benchmark, kmt_incnat):
    term = _normalization_workload(kmt_incnat)

    def run():
        return normalize(term, kmt_incnat.theory, budget=2_000_000)

    nf = benchmark(run)
    benchmark.extra_info["summands"] = len(nf)


def test_ablation_smart_constructors_off(benchmark, kmt_incnat):
    term = _normalization_workload(kmt_incnat)

    def run():
        with smart_constructors_disabled():
            return normalize(term, kmt_incnat.theory, budget=2_000_000)

    nf = benchmark(run)
    benchmark.extra_info["summands"] = len(nf)


# ---------------------------------------------------------------------------
# 2. custom theory solver vs. naive enumeration
# ---------------------------------------------------------------------------


def _bounds_predicate(width):
    """A chain of bound tests with exactly one satisfying window."""
    theory = IncNatTheory()
    pred = T.pone()
    for index in range(width):
        pred = T.pand(pred, T.pprim(Gt("x", index)))
    pred = T.pand(pred, T.pnot(T.pprim(Gt("x", width))))
    return pred, theory


def test_ablation_custom_solver(benchmark):
    pred, theory = _bounds_predicate(10)

    def run():
        return dpll_satisfiable(pred, theory)

    assert benchmark(run) is True


def test_ablation_naive_enumeration(benchmark):
    pred, theory = _bounds_predicate(10)

    def run():
        return naive_satisfiable(pred, theory)

    assert benchmark(run) is True


# ---------------------------------------------------------------------------
# 3. unsatisfiable-cell pruning in the decision procedure
# ---------------------------------------------------------------------------


def _cell_heavy_pair():
    kmt = KMT(IncNatTheory())
    left = kmt.parse("inc(x)*; x > 6")
    right = kmt.parse("inc(x)*; inc(x)*; x > 6")
    return kmt.theory, left, right


def test_ablation_cell_pruning_on(benchmark):
    # Pruning is an enumerator knob; pin the mode so the ablation keeps
    # measuring it after the signature search became the default.
    theory, left, right = _cell_heavy_pair()
    checker = EquivalenceChecker(theory, prune_unsat_cells=True, cell_search="enumerate")

    def run():
        return checker.check_equivalent(left, right)

    result = benchmark(run)
    benchmark.extra_info["cells_explored"] = result.cells_explored
    assert result.equivalent


def test_ablation_cell_pruning_off(benchmark):
    theory, left, right = _cell_heavy_pair()
    checker = EquivalenceChecker(theory, prune_unsat_cells=False, cell_search="enumerate")

    def run():
        return checker.check_equivalent(left, right)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["cells_explored"] = result.cells_explored
    assert result.equivalent
