"""Compiled symbolic automata: cold compilation vs warm ``aut``-cache reuse.

Two questions, answered on the paper's nested-sums-under-star family (the
Section 5 scaling shape also used by ``bench_cell_search.py``):

1. **Does the ``aut`` cache pay?**  Each size runs the same equivalence
   query twice through one checker + caches bundle: *cold* (every
   restricted-action sum compiled and minimized from scratch) and *warm*
   (the equivalence/signature verdict memos are cleared so the signature
   search and product walks genuinely re-run, but the compiled automata are
   served from the ``aut`` LRU).  The warm run must perform **zero** new
   compilations — that part is deterministic and gated in both modes — and
   the full run additionally gates the wall-clock speedup.

2. **What does compilation cost against the derivative walk?**  For the
   family's loop actions ``L`` vs ``L;L`` (equivalent by ``m*;m* == m*``),
   compare the legacy pairwise ``language_compare`` against compile +
   ``compiled_compare`` — once cold (compilation amortized over a single
   comparison) and once hot (automata precompiled, the regime every warm
   session lives in after the first query touching a sum).

3. **Does the flat kernel pay over the legacy walk?**  On the same
   precompiled automata, hot ``flat_compare`` vs hot ``compiled_compare`` —
   on the *equivalent* pair (where the canonical-table fast path decides
   without walking; this is the gated number) and on an *inequivalent*
   perturbed pair (depth ``d`` vs ``d+1``), which takes the witness-producing
   walk (informational — below ``_BFS_NUMPY_MIN_PAIRS`` product codes, or
   without numpy, that walk *is* the legacy one, so it is never gated on
   wall clock).  Both kernels must agree on verdicts and witness words
   (always gated).

Run directly to emit the ``BENCH_compile.json`` artifact at the repo root::

    PYTHONPATH=src python benchmarks/bench_compile.py            # full
    PYTHONPATH=src python benchmarks/bench_compile.py --smoke    # CI gate

Also collectable with pytest as a regression guard (deterministic gates
only — wall clock is never gated in the smoke/pytest lane).
"""

from __future__ import annotations

import json
import os
import sys
import time

from repro.core import terms as T
from repro.core.automata import language_compare, set_derivative_cache
from repro.core.compile import compile_automaton, compiled_compare
from repro.core.decision import EquivalenceChecker
from repro.core.kernels import HAVE_NUMPY, flat_compare
from repro.core.pushback import Normalizer
from repro.engine.cache import DERIVATIVE_CACHE, EngineCaches
from repro.theories.bitvec import BitVecTheory

#: (loop summands m, chain depth d) per size, smallest to largest.  ``m``
#: controls the number of guards (and hence signatures / distinct enabled
#: sums); ``d`` the length of each summand's action chain, which is what
#: grows the automata.  ``m`` stays at 2: the star-of-sums pushback is
#: doubly exponential in the summand count (the paper's Denest blow-up), and
#: normalization is not what this benchmark measures.
SIZES = [(1, 2), (2, 2), (2, 4), (2, 6), (2, 8)]
SMOKE_SIZES = [(1, 2), (2, 2)]

#: Full-run gate: warm aut-cache reuse vs cold compilation at the largest size.
WARM_SPEEDUP_TARGET = 5.0
#: Full-run gate: flat vs legacy kernel on the largest size's hot equivalent
#: pair (the canonical-table fast path vs the legacy product walk).
KERNEL_SPEEDUP_TARGET = 5.0
#: How many repeated comparisons the hot (precompiled) regime amortizes over.
HOT_REPEATS = 25


def _chain_sum_loop(theory, m, d):
    """Nested sums under star with depth-``d`` action chains:

    ``(x1 = F; y1_1 := T; ...; y1_d := T  +  ...  +  xm = F; ym_1 := T; ...)*``

    The Section 5 flip-loop shape, with each summand's single assignment
    deepened into a chain of ``d`` distinct assignments so the compiled
    automata have ~``m*d`` states over ~``m*d`` symbols — compilation, not
    solving, is the dominant cost, which is the regime the ``aut`` cache
    exists for.
    """
    summands = []
    for index in range(1, m + 1):
        chain = T.ttest(theory.eq(f"x{index}", False))
        for depth in range(1, d + 1):
            chain = T.tseq(chain, theory.assign(f"y{index}_{depth}", True))
        summands.append(chain)
    return T.tstar(T.tplus_all(summands))


def family_pair(m, d):
    theory = BitVecTheory()
    loop = _chain_sum_loop(theory, m, d)
    left = loop
    right = T.tseq(loop, loop)
    return theory, left, right, loop


def _measure_cold_warm(theory, left, right):
    """One size's cold-compile vs warm-aut-reuse row (normalization excluded)."""
    normalizer = Normalizer(theory, budget=5_000_000)
    x, y = normalizer.normalize(left), normalizer.normalize(right)
    caches = EngineCaches()
    checker = EquivalenceChecker(theory, caches=caches)
    started = time.perf_counter()
    cold_result = checker.check_equivalent_nf(x, y)
    cold_seconds = time.perf_counter() - started
    if not cold_result.equivalent:
        raise AssertionError("benchmark pair unexpectedly inequivalent (cold)")
    cold_states = checker.states_compiled
    cold_aut_misses = caches.aut.stats.misses
    # Clear the verdict memos so the signature search and every product walk
    # re-run; only the compiled automata (and satisfiability memos) stay warm.
    caches.equiv.clear()
    caches.sig.clear()
    hits_before = caches.aut.stats.hits
    started = time.perf_counter()
    warm_result = checker.check_equivalent_nf(x, y)
    warm_seconds = time.perf_counter() - started
    if not warm_result.equivalent:
        raise AssertionError("benchmark pair unexpectedly inequivalent (warm)")
    return {
        "cold": {
            "seconds": round(cold_seconds, 6),
            "states_compiled": cold_states,
            "aut_misses": cold_aut_misses,
        },
        "warm": {
            "seconds": round(warm_seconds, 6),
            "states_compiled": checker.states_compiled - cold_states,
            "aut_hits": caches.aut.stats.hits - hits_before,
        },
        "warm_speedup": round(cold_seconds / warm_seconds, 2) if warm_seconds else float("inf"),
    }


def _measure_compare(theory, loop):
    """Compiled vs derivative comparison of the loop's restricted-action sums.

    ``L`` vs ``L;L`` themselves contain primitive tests; what the decision
    procedure compares per cell are the *restricted-action sums* of their
    normal forms — exactly what a signature with every guard enabled sees.
    """
    normalizer = Normalizer(theory, budget=5_000_000)
    left = T.tplus_all(action for _, action in normalizer.normalize(loop).sorted_pairs())
    right = T.tplus_all(
        action
        for _, action in normalizer.normalize(T.tseq(loop, loop)).sorted_pairs()
    )
    started = time.perf_counter()
    derivative_equal, _ = language_compare(left, right)
    derivative_seconds = time.perf_counter() - started
    started = time.perf_counter()
    a, b = compile_automaton(left), compile_automaton(right)
    compiled_equal, _ = compiled_compare(a, b)
    compiled_cold_seconds = time.perf_counter() - started
    if not (derivative_equal and compiled_equal):
        raise AssertionError("loop pair unexpectedly inequivalent")
    # Hot regime: automata already cached, repeated comparisons (what a warm
    # session pays per signature after the first query touching these sums).
    started = time.perf_counter()
    for _ in range(HOT_REPEATS):
        compiled_compare(a, b)
    compiled_hot_seconds = (time.perf_counter() - started) / HOT_REPEATS
    started = time.perf_counter()
    for _ in range(HOT_REPEATS):
        language_compare(left, right)
    derivative_hot_seconds = (time.perf_counter() - started) / HOT_REPEATS
    return {
        "automaton_states": {"left": a.state_count, "right": b.state_count,
                             "left_raw": a.raw_states, "right_raw": b.raw_states},
        "language_compare_seconds": round(derivative_seconds, 6),
        "language_compare_hot_seconds": round(derivative_hot_seconds, 6),
        "compiled_cold_seconds": round(compiled_cold_seconds, 6),
        "compiled_hot_seconds": round(compiled_hot_seconds, 6),
        "hot_speedup": (
            round(derivative_hot_seconds / compiled_hot_seconds, 2)
            if compiled_hot_seconds else float("inf")
        ),
    }


def _hot_seconds(fn, repeats=HOT_REPEATS):
    started = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - started) / repeats


def _measure_kernels(theory, m, d):
    """Flat vs legacy product-walk kernels on precompiled automata (hot).

    The equivalent pair (sums of ``L`` vs ``L;L``) compiles to byte-identical
    canonical tables, so the flat kernel decides it on the equality fast path
    — the regime warm sessions live in, and the gated number.  The
    inequivalent pair (sums of the depth-``d`` vs depth-``d+1`` loop) forces
    the batched witness-producing BFS; it is recorded but never wall-clock
    gated (without numpy that path *is* the legacy walk).
    """
    normalizer = Normalizer(theory, budget=5_000_000)

    def loop_sum(term):
        return T.tplus_all(
            action for _, action in normalizer.normalize(term).sorted_pairs()
        )

    loop = _chain_sum_loop(theory, m, d)
    a = compile_automaton(loop_sum(loop))
    b = compile_automaton(loop_sum(T.tseq(loop, loop)))
    c = compile_automaton(loop_sum(_chain_sum_loop(theory, m, d + 1)))
    # Verdict/witness agreement is a correctness gate, not a timing one.
    if flat_compare(a, b) != compiled_compare(a, b):
        raise AssertionError("flat and legacy kernels disagree on the equivalent pair")
    flat_verdict = flat_compare(a, c)
    if flat_verdict != compiled_compare(a, c):
        raise AssertionError("flat and legacy kernels disagree on the inequivalent pair")
    if flat_verdict[0]:
        raise AssertionError("perturbed pair unexpectedly equivalent")
    equivalent = {
        "legacy_hot_seconds": round(_hot_seconds(lambda: compiled_compare(a, b)), 9),
        "flat_hot_seconds": round(_hot_seconds(lambda: flat_compare(a, b)), 9),
    }
    equivalent["flat_speedup"] = (
        round(equivalent["legacy_hot_seconds"] / equivalent["flat_hot_seconds"], 2)
        if equivalent["flat_hot_seconds"] else float("inf")
    )
    inequivalent = {
        "legacy_hot_seconds": round(_hot_seconds(lambda: compiled_compare(a, c)), 9),
        "flat_hot_seconds": round(_hot_seconds(lambda: flat_compare(a, c)), 9),
        "witness_length": len(flat_verdict[1]),
    }
    inequivalent["flat_speedup"] = (
        round(inequivalent["legacy_hot_seconds"] / inequivalent["flat_hot_seconds"], 2)
        if inequivalent["flat_hot_seconds"] else float("inf")
    )
    out = {"numpy": HAVE_NUMPY, "equivalent": equivalent, "inequivalent": inequivalent}
    if not HAVE_NUMPY:
        out["note"] = (
            "numpy unavailable: flat kernels ran the pure-array paths (the "
            "equality fast path is numpy-free; the inequivalent pair fell "
            "back to the legacy walk)"
        )
    return out


def run_all(smoke=False):
    # The decision procedure always runs with the shared derivative memo
    # installed (sessions install it); give the derivative baseline the same
    # advantage so the comparison is honest.
    set_derivative_cache(DERIVATIVE_CACHE)
    rows = []
    for m, d in (SMOKE_SIZES if smoke else SIZES):
        theory, left, right, loop = family_pair(m, d)
        row = {"size": [m, d]}
        row.update(_measure_cold_warm(theory, left, right))
        row["compare"] = _measure_compare(theory, loop)
        row["kernels"] = _measure_kernels(theory, m, d)
        rows.append(row)
    return {
        "benchmark": "compile",
        "description": (
            "cold compilation vs warm aut-cache reuse, compiled product "
            "walks vs derivative language_compare, and flat vs legacy walk "
            "kernels, on the nested-sums-under-star family"
        ),
        "smoke": smoke,
        "numpy": HAVE_NUMPY,
        "sizes": rows,
        "largest_warm_speedup": rows[-1]["warm_speedup"],
        "largest_hot_speedup": rows[-1]["compare"]["hot_speedup"],
        "largest_kernel_speedup": rows[-1]["kernels"]["equivalent"]["flat_speedup"],
    }


def check_report(report, require_speedup=True):
    """The acceptance gates; returns a list of failure strings."""
    failures = []
    for row in report["sizes"]:
        if row["cold"]["states_compiled"] <= 0:
            failures.append(f"size {row['size']}: cold run compiled no automata")
        if row["warm"]["states_compiled"] != 0:
            failures.append(
                f"size {row['size']}: warm run compiled "
                f"{row['warm']['states_compiled']} states instead of reusing the aut cache"
            )
        if row["warm"]["aut_hits"] <= 0:
            failures.append(f"size {row['size']}: warm run never hit the aut cache")
        # The flat kernel must never lose to the legacy walk on the hot
        # equivalent pair.  Gated in every lane, smoke included: the fast
        # path is two buffer comparisons against a full product walk, so the
        # margin is orders of magnitude — not a flaky wall-clock race.
        if row["kernels"]["equivalent"]["flat_speedup"] < 1.0:
            failures.append(
                f"size {row['size']}: flat kernel slower than legacy on the "
                f"equivalent pair ({row['kernels']['equivalent']['flat_speedup']}x)"
            )
    if require_speedup and report["largest_warm_speedup"] < WARM_SPEEDUP_TARGET:
        failures.append(
            f"largest-size warm speedup {report['largest_warm_speedup']}x "
            f"below the {WARM_SPEEDUP_TARGET}x target"
        )
    if require_speedup and report["largest_kernel_speedup"] < KERNEL_SPEEDUP_TARGET:
        failures.append(
            f"largest-size flat-kernel speedup {report['largest_kernel_speedup']}x "
            f"below the {KERNEL_SPEEDUP_TARGET}x target"
        )
    return failures


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    smoke = "--smoke" in argv
    report = run_all(smoke=smoke)
    artifact = os.path.normpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_compile.json")
    )
    if not smoke:
        with open(artifact, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    if not smoke:
        print(f"# wrote {artifact}")
    # Wall clock is only gated on the full run; the smoke lane (CI) checks
    # the deterministic compilation/cache-hit counters.
    failures = check_report(report, require_speedup=not smoke)
    for failure in failures:
        print(f"# FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def test_warm_aut_cache_reuses_compiled_automata():
    """Regression guard: the warm run never recompiles (deterministic)."""
    report = run_all(smoke=True)
    assert check_report(report, require_speedup=False) == []


if __name__ == "__main__":
    raise SystemExit(main())
