#!/usr/bin/env python3
"""Writing your own client theory: a worked example (the paper's §1.2 pitch).

The point of KMT is that a domain expert can get a sound, complete and
*decidable* KAT for their domain by supplying only a handful of definitions —
"a fast path to a minimum viable model".  This example builds a small theory
from scratch, outside the shipped ones, and immediately gets equivalence
checking for free.

The domain: **severity levels**.  A program manipulates a log-severity
variable drawn from the ordered, finite scale

    DEBUG < INFO < WARN < ERROR

with actions that *escalate* the severity (set it to at least a given level —
monotone, like IncNat's increment) and tests that compare it against a level.
This is deliberately NOT one of the shipped theories; everything below uses
only the public `Theory` interface.

Run with:  python examples/custom_theory.py
"""

from dataclasses import dataclass

from repro import KMT, pone, pprim, pzero
from repro.core.parser import match_phrase, phrase_text
from repro.core.theory import Theory
from repro.utils.errors import ParseError, TheoryError
from repro.utils.frozendict import FrozenDict

LEVELS = ("DEBUG", "INFO", "WARN", "ERROR")
RANK = {name: index for index, name in enumerate(LEVELS)}


@dataclass(frozen=True)
class AtLeast:
    """Primitive test: ``var >= LEVEL``."""

    var: str
    level: str

    def __str__(self):
        return f"{self.var} >= {self.level}"


@dataclass(frozen=True)
class Escalate:
    """Primitive action: ``escalate(var, LEVEL)`` — raise var to at least LEVEL."""

    var: str
    level: str

    def __str__(self):
        return f"escalate({self.var}, {self.level})"


class SeverityTheory(Theory):
    """Ordered severity levels with monotone escalation."""

    name = "severity"

    # -- ownership -----------------------------------------------------------
    def owns_test(self, alpha):
        return isinstance(alpha, AtLeast)

    def owns_action(self, pi):
        return isinstance(pi, Escalate)

    # -- semantics -------------------------------------------------------------
    def initial_state(self):
        return FrozenDict()

    def pred(self, alpha, trace):
        current = trace.last_state.get(alpha.var, "DEBUG")
        return RANK[current] >= RANK[alpha.level]

    def act(self, pi, state):
        current = state.get(pi.var, "DEBUG")
        if RANK[current] >= RANK[pi.level]:
            return state.set(pi.var, current)
        return state.set(pi.var, pi.level)

    # -- pushback (weakest preconditions) ---------------------------------------
    def push_back(self, pi, alpha):
        if not isinstance(pi, Escalate) or not isinstance(alpha, AtLeast):
            raise TheoryError(f"severity push_back on foreign primitives {pi!r}/{alpha!r}")
        if pi.var != alpha.var:
            return [pprim(alpha)]                    # untouched variable: commute
        if RANK[pi.level] >= RANK[alpha.level]:
            return [pone()]                          # escalation guarantees the test
        return [pprim(alpha)]                        # weaker escalation: test unchanged

    def subterms(self, alpha):
        # Pushback only ever produces the test itself (or 0/1), so nothing extra.
        return []

    # -- satisfiability -----------------------------------------------------------
    def satisfiable_conjunction(self, literals):
        # For each variable: collect the strongest required level and the
        # weakest forbidden level; satisfiable iff required < forbidden.
        lower = {}
        upper = {}
        for alpha, polarity in literals:
            rank = RANK[alpha.level]
            if polarity:
                lower[alpha.var] = max(lower.get(alpha.var, 0), rank)
            else:
                upper[alpha.var] = min(upper.get(alpha.var, len(LEVELS)), rank)
        for var, need in lower.items():
            if need >= upper.get(var, len(LEVELS)):
                return False
        for var, cap in upper.items():
            if cap <= 0:
                return False  # even DEBUG is forbidden: impossible
        return True

    # -- concrete syntax -------------------------------------------------------------
    def parse_phrase(self, tokens):
        matched = match_phrase(tokens, "WORD", ">=", "WORD")
        if matched is not None and matched[1] in RANK:
            return ("test", AtLeast(matched[0], matched[1]))
        matched = match_phrase(tokens, "escalate", "(", "WORD", ",", "WORD", ")")
        if matched is not None and matched[1] in RANK:
            return ("action", Escalate(matched[0], matched[1]))
        raise ParseError(f"severity theory cannot parse {phrase_text(tokens)!r}")


def main():
    kmt = KMT(SeverityTheory())

    print("=== a brand-new theory, immediately decidable ===")
    checks = [
        # Escalating to ERROR certainly reaches WARN.
        ("escalate(log, ERROR); log >= WARN", "escalate(log, ERROR)", True),
        # Escalating to INFO does not guarantee WARN...
        ("escalate(log, INFO); log >= WARN", "escalate(log, INFO)", False),
        # ...but it also never *destroys* it (escalation is monotone).
        ("log >= WARN; escalate(log, INFO); log >= WARN", "log >= WARN; escalate(log, INFO)", True),
        # Escalation is idempotent at the same level — but traces differ!
        ("escalate(log, WARN); escalate(log, WARN)", "escalate(log, WARN)", False),
        # Order of escalations on different variables is irrelevant.
        ("escalate(a, WARN); escalate(b, ERROR)", "escalate(a, WARN); escalate(b, ERROR)", True),
    ]
    for left, right, expected in checks:
        verdict = kmt.equivalent(left, right)
        status = "ok" if verdict == expected else "UNEXPECTED"
        symbol = "==" if verdict else "!="
        print(f"  [{status}] {left}   {symbol}   {right}")

    print()
    print("=== loops over the new theory ===")
    noisy = "(log >= WARN; escalate(alerts, ERROR) + ~(log >= WARN); escalate(log, INFO))*"
    print("  normalizing a guarded loop gives",
          len(kmt.normalize(kmt.parse(noisy))), "summands")
    print("  escalating to INFO can never reach WARN:",
          kmt.is_empty("~(log >= WARN); escalate(log, INFO); log >= WARN"))


if __name__ == "__main__":
    main()
