#!/usr/bin/env python3
"""The paper's Fig. 1 While programs, verified through the KMT pipeline.

Fig. 1 motivates KMT with three small imperative programs:

* ``Pnat`` — a counting loop over natural numbers (theory: IncNat);
* ``Pset`` — a loop inserting values into an unbounded set (theory:
  Set(IncNat));
* ``Pmap`` — a loop recording parities in an unbounded map (theory:
  Map(IncNat × BitVec)).

Each program is written in the While-language frontend, compiled to a KMT term
(Section 1.1's translation) and then *verified*: we check that its trailing
``assert`` never fires by asking whether deleting the assert changes the
program.  Constants are scaled down from the paper's (50/100/...) so the demo
runs in seconds; the reasoning is identical.

Run with:  python examples/while_programs.py
"""

from repro import (
    KMT,
    BitVecTheory,
    IncNatTheory,
    MapTheory,
    NatBoolMapAdapter,
    NatExpressionAdapter,
    ProductTheory,
    SetTheory,
)
from repro.lang import parse_program


def verify(name, kmt, with_assert, without_assert):
    """Report whether the assert in a program is redundant (i.e. always true)."""
    holds = kmt.equivalent(with_assert, without_assert)
    print(f"  [{name}] assert always holds: {holds}")
    return holds


def pnat():
    print("Pnat (Fig. 1a): counting loop over increasing naturals")
    theory = IncNatTheory(variables=("i", "j"))
    kmt = KMT(theory)
    body = """
    assume i < 2;
    while (i < 5) {
        i += 1;
        j += 2;
    }
    """
    program = parse_program(body + "assert j > 5;", theory).compile()
    stripped = parse_program(body, theory).compile()
    verify("Pnat", kmt, program, stripped)

    too_strong = parse_program(body + "assert j > 20;", theory).compile()
    print("  [Pnat] an over-strong assert is detected:", not kmt.equivalent(too_strong, stripped))


def pset():
    print("Pset (Fig. 1b): inserting loop counters into an unbounded set")
    nat = IncNatTheory(variables=("i",))
    adapter = NatExpressionAdapter(nat, variables=("i",))
    theory = SetTheory(nat, adapter, set_variables=("X",))
    kmt = KMT(theory)

    body = """
    assume i < 1;
    while (i < 4) {
        add(X, i);
        inc(i);
    }
    """
    program = parse_program(body + "assert in(X, 3);", theory).compile()
    stripped = parse_program(body, theory).compile()
    verify("Pset", kmt, program, stripped)

    absent = parse_program(body + "assert in(X, 9);", theory).compile()
    print("  [Pset] membership of a never-inserted value is not implied:",
          not kmt.equivalent(absent, stripped))

    print("  [Pset] paper claim — (inc i; add(X, i))*; i > 3; in(X, 3) is non-empty:",
          not kmt.is_empty("(inc(i); add(X, i))*; i > 3; in(X, 3)"))


def pmap():
    print("Pmap (Fig. 1c): recording parities in an unbounded map")
    nat = IncNatTheory(variables=("i",))
    bools = BitVecTheory(variables=("parity",))
    inner = ProductTheory(nat, bools)
    adapter = NatBoolMapAdapter(nat, bools, key_variables=("i",), value_variables=("parity",))
    theory = MapTheory(inner, adapter, map_variables=("odd",))
    kmt = KMT(theory)

    body = """
    i := 0;
    parity := F;
    while (i < 4) {
        odd[i] := parity;
        inc(i);
        flip parity;
    }
    """
    program = parse_program(body + "assert odd[3] = T;", theory).compile()
    stripped = parse_program(body, theory).compile()
    verify("Pmap", kmt, program, stripped)

    wrong_parity = parse_program(body + "assert odd[2] = T;", theory).compile()
    print("  [Pmap] asserting the wrong parity is detected:",
          not kmt.equivalent(wrong_parity, stripped))


def main():
    pnat()
    print()
    pset()
    print()
    pmap()


if __name__ == "__main__":
    main()
