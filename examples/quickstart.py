#!/usr/bin/env python3
"""Quickstart: build a KMT, parse terms, decide equivalence.

This walks through the library's core workflow on the theory of increasing
naturals (the paper's running example, Fig. 2):

1. construct a client theory and wrap it in a :class:`repro.KMT`;
2. parse terms in the concrete syntax (or build them programmatically);
3. normalize terms to see the pushback machinery at work;
4. decide equivalence, ordering and emptiness;
5. run programs against the executable tracing semantics.

Run with:  python examples/quickstart.py
"""

from repro import KMT, IncNatTheory
from repro.core.pretty import pretty_normal_form


def main():
    theory = IncNatTheory(variables=("x", "y"))
    kmt = KMT(theory)

    print("=== 1. parsing ===")
    program = kmt.parse("x < 2; while (x < 5) do inc(x) end; x > 4")
    print("parsed term:", kmt.pretty(program))

    print()
    print("=== 2. normalization (pushback) ===")
    loop = kmt.parse("inc(x)*; x > 3")
    normal_form, stats = kmt.normalize_with_stats(loop)
    print(f"normalizing  {kmt.pretty(loop)}")
    print(f"  {len(normal_form)} summands, {stats.steps} pushback steps")
    print("  normal form:", pretty_normal_form(normal_form))

    print()
    print("=== 3. equivalence checking ===")
    queries = [
        ("inc(x); x > 1", "x > 0; inc(x)"),                      # the Inc-GT axiom
        ("inc(x)*; x > 10", "inc(x)*; inc(x)*; x > 10"),         # Fig. 9 row 2
        ("inc(x)*; x > 10", "inc(x)*; x > 11"),                  # genuinely different
    ]
    for left, right in queries:
        verdict = kmt.equivalent(left, right)
        symbol = "==" if verdict else "!="
        print(f"  {left}   {symbol}   {right}")

    print()
    print("=== 4. ordering and emptiness ===")
    print("  x > 5  <=  x > 3 :", kmt.less_or_equal("x > 5", "x > 3"))
    print("  'x < 1; inc(x); x > 3' is empty:", kmt.is_empty("x < 1; inc(x); x > 3"))
    print("  'x < 1; inc(x); x > 0' is empty:", kmt.is_empty("x < 1; inc(x); x > 0"))

    print()
    print("=== 5. running programs (tracing semantics) ===")
    for trace in sorted(kmt.run(program), key=len):
        steps = " ; ".join(str(e.action) for e in trace if e.action is not None)
        print(f"  trace: {steps or '<no actions>'}  ->  final state {dict(trace.last_state)}")

    print()
    print("=== 6. counterexamples ===")
    result = kmt.check_equivalent("inc(x); x > 2", "inc(x); x > 1")
    print("  inc(x); x > 2  vs  inc(x); x > 1 :", result)
    if result.counterexample:
        print("  ", result.counterexample.describe())


if __name__ == "__main__":
    main()
