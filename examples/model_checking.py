#!/usr/bin/env python3
"""Model checking programs with LTLf-extended KMT (paper Section 2.4).

The paper's pitch: because LTLf is just another client theory, temporal
*model checking* becomes equivalence checking.  For a program ``r`` and a
past-time property ``prop``:

* ``r == r ; prop``        — every run of ``r`` satisfies ``prop``;
* ``is_empty(r ; ~prop)``  — no run of ``r`` violates ``prop``;
* ``is_empty(r ; prop)``   — no run satisfies it.

Programs must be *anchored* (``start`` plus an assume on the initial state),
otherwise the unconstrained input history can trivially violate any property.

This example reproduces the Section 2.4 calculation pushing ``always(j <= N)``
back through an increment, then model-checks a small counter program.

Run with:  python examples/model_checking.py
"""

from repro import KMT, IncNatTheory, LtlfTheory
from repro.core import terms as T
from repro.theories.incnat import Incr


def weakest_precondition_demo(kmt, theory, nat):
    print("=== Section 2.4: pushing a temporal test through an action ===")
    invariant = theory.always(nat.le("j", 200))
    wp = kmt.weakest_precondition(Incr("j"), invariant)
    print("  always(j <= 200) pushed back through inc(j):")
    print("    ", kmt.pretty(wp))
    print("  (the paper's calculation gives (j <= 199) ; always(j <= 200))")


def model_check(kmt, theory, program_text, prop, label):
    program = T.tseq(
        T.ttest(T.pand(theory.start(), kmt.parse_pred("j < 1"))),
        kmt.parse(program_text),
    )
    holds = kmt.equivalent(program, T.tseq(program, T.ttest(prop)))
    print(f"  {label}: {holds}")
    return holds


def main():
    nat = IncNatTheory(variables=("j",))
    theory = LtlfTheory(nat)
    kmt = KMT(theory)

    weakest_precondition_demo(kmt, theory, nat)

    print()
    print("=== model checking a bounded counter loop ===")
    program = "while (j < 3) do inc(j) end"
    print(f"  program: start; j < 1; {program}")
    model_check(kmt, theory, program, theory.always(nat.le("j", 3)),
                "always(j <= 3) holds on every run")
    model_check(kmt, theory, program, theory.always(nat.le("j", 2)),
                "always(j <= 2) holds on every run (expected False)")
    model_check(kmt, theory, program, theory.ever(nat.gt("j", 2)),
                "the counter eventually exceeds 2 on every run")

    print()
    print("=== emptiness-style queries ===")
    anchored = T.tseq(
        T.ttest(T.pand(theory.start(), kmt.parse_pred("j < 1"))), kmt.parse(program)
    )
    violation = T.ttest(T.pnot(theory.always(nat.le("j", 3))))
    print("  some run violates always(j <= 3):", not kmt.is_empty(T.tseq(anchored, violation)))
    overshoot = T.ttest(theory.ever(nat.gt("j", 5)))
    print("  some run ever sees j > 5:", not kmt.is_empty(T.tseq(anchored, overshoot)))

    print()
    print("=== temporal reasoning is compositional ===")
    # LTLf is parameterized by the client theory, so the same operators work
    # over any base theory; here we reuse them for a history question.
    history = theory.since(nat.gt("j", 0), nat.gt("j", 2))
    program2 = T.tseq(
        T.ttest(T.pand(theory.start(), kmt.parse_pred("j < 1"))),
        kmt.parse("j := 3; inc(j)"),
    )
    print("  after j := 3; inc(j): '(j > 0) since (j > 2)' always holds:",
          kmt.equivalent(program2, T.tseq(program2, T.ttest(history))))


if __name__ == "__main__":
    main()
