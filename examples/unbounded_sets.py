#!/usr/bin/env python3
"""Reasoning about unbounded state: sets and maps (paper Sections 1.2 and 2.3).

The headline capability of KMT over prior concrete KATs is *unbounded state*:
monotonically increasing counters, grow-only sets and write-once-per-key maps
all admit sound, complete and decidable equational reasoning because their
weakest preconditions never grow in the maximal-subterm ordering.

This example exercises that capability directly:

* the Section 2.3 claim that ``(inc i; add(X, i))*; i > N; in(X, N)`` is
  non-empty (the loop can run until the counter passes N, inserting N on the
  way);
* persistence of set membership;
* a parity map over an unbounded key space (Fig. 1c in miniature);
* what goes wrong if you ask for an operation the framework must reject
  (comparing two variables would encode counter machines — Section 1.2).

Run with:  python examples/unbounded_sets.py
"""

from repro import (
    KMT,
    BitVecTheory,
    IncNatTheory,
    MapTheory,
    NatBoolMapAdapter,
    NatExpressionAdapter,
    ProductTheory,
    SetTheory,
)


def sets_demo():
    print("=== unbounded sets over naturals ===")
    nat = IncNatTheory(variables=("i",))
    adapter = NatExpressionAdapter(nat, variables=("i",))
    theory = SetTheory(nat, adapter, set_variables=("X",))
    kmt = KMT(theory)

    claim = "(inc(i); add(X, i))*; i > 6; in(X, 6)"
    print("  (inc i; add(X,i))*; i > 6; in(X, 6) is non-empty:", not kmt.is_empty(claim))

    print("  membership persists across later inserts:",
          kmt.equivalent("in(X, 2); inc(i); add(X, i); in(X, 2)",
                         "in(X, 2); inc(i); add(X, i)"))

    print("  a freshly inserted value is a member:",
          kmt.equivalent("i := 5; add(X, i); in(X, 5)", "i := 5; add(X, i)"))

    print("  nothing forces membership of values never inserted:",
          not kmt.equivalent("i := 5; add(X, i); in(X, 6)", "i := 5; add(X, i)"))


def maps_demo():
    print("=== unbounded maps: the parity table ===")
    nat = IncNatTheory(variables=("i",))
    bools = BitVecTheory(variables=("parity",))
    inner = ProductTheory(nat, bools)
    adapter = NatBoolMapAdapter(nat, bools, key_variables=("i",), value_variables=("parity",))
    theory = MapTheory(inner, adapter, map_variables=("odd",))
    kmt = KMT(theory)

    program = (
        "i := 0; parity := F; "
        "(i < 4; odd[i] := parity; inc(i); flip parity)*; ~(i < 4)"
    )
    print("  after the loop, odd[1] = T always holds:",
          kmt.equivalent(f"{program}; odd[1] = T", program))
    print("  after the loop, odd[2] = T can never hold:",
          kmt.is_empty(f"{program}; odd[2] = T"))


def limits_demo():
    print("=== what the framework must refuse (Section 1.2) ===")
    print("  Comparing two variables (x = y) or decrementing a counter would let")
    print("  terms encode counter machines; IncNat therefore only offers x > n,")
    print("  inc(x) and x := n.  Asking the parser for anything else fails loudly:")
    nat = IncNatTheory()
    kmt = KMT(nat)
    for bad in ("x = y", "dec(x)", "x := x + y"):
        try:
            kmt.parse(bad)
            print(f"    parsed {bad!r} (unexpected!)")
        except Exception as error:  # ParseError
            print(f"    {bad!r:12} rejected: {type(error).__name__}")


def main():
    sets_demo()
    print()
    maps_demo()
    print()
    limits_demo()


if __name__ == "__main__":
    main()
