#!/usr/bin/env python3
"""Network verification with tracing NetKAT and Temporal NetKAT (§2.5–2.6).

The scenario is the paper's "logical crossbar" ``in; (p; t)*; p; out``:

* a small three-switch line topology  h1 -- sw1 -- sw2 -- sw3 -- h2,
* a forwarding policy ``p`` that moves packets towards their destination,
* a topology relation ``t`` modelled as switch hops,
* and verification questions asked as term equivalences / emptiness:

  - reachability: do packets from h1 reach h2?
  - isolation: do packets for h1 ever show up at switch 3?
  - waypointing (Temporal NetKAT): does every delivered packet traverse the
    firewall switch sw2?

Run with:  python examples/network_verification.py
"""

from repro import KMT, temporal_netkat
from repro.core import terms as T
from repro.theories.temporal_netkat import waypoint_query

FIELDS = {
    "sw": (1, 2, 3),   # switch the packet is currently at
    "dst": (1, 2),     # destination host
}


def build_network(kmt):
    """The policy/topology crossbar for the 3-switch line network."""
    # Policy: at each switch, forward towards the destination (drop otherwise).
    policy = kmt.parse(
        "(sw = 1; dst = 2; sw <- 2)"
        " + (sw = 2; dst = 2; sw <- 3)"
        " + (sw = 2; dst = 1; sw <- 1)"
        " + (sw = 3; dst = 1; sw <- 2)"
    )
    # The crossbar: run the policy up to twice (enough hops for this line).
    return T.tseq(policy, T.tseq(T.tplus(T.tone(), policy), T.tplus(T.tone(), policy)))


def main():
    theory = temporal_netkat(FIELDS)
    netkat = theory.inner
    kmt = KMT(theory)
    network = build_network(kmt)

    print("=== reachability ===")
    ingress = kmt.parse("sw = 1; dst = 2")
    delivered = T.ttest(netkat.eq("sw", 3))
    reach = T.tseq(T.ttest(theory.start()), T.tseq(ingress, T.tseq(network, delivered)))
    print("  h1 -> h2 packets can reach switch 3:", not kmt.is_empty(reach))

    print()
    print("=== isolation ===")
    wrong_way = T.tseq(
        T.ttest(theory.start()),
        T.tseq(kmt.parse("sw = 1; dst = 1"), T.tseq(network, delivered)),
    )
    print("  h1 -> h1 packets can reach switch 3:", not kmt.is_empty(wrong_way))

    print()
    print("=== waypointing (Temporal NetKAT) ===")
    waypoint = T.ttest(waypoint_query(theory, "sw", 2))
    delivered_runs = T.tseq(
        T.ttest(theory.start()), T.tseq(ingress, T.tseq(network, delivered))
    )
    every_delivery_waypointed = kmt.equivalent(
        delivered_runs, T.tseq(delivered_runs, waypoint)
    )
    print("  every delivered h1->h2 packet traversed the firewall sw2:",
          every_delivery_waypointed)

    print()
    print("=== tracing vs. merging semantics (Section 2.5) ===")
    print("  sw <- 2; sw = 2  ==  sw <- 2        :", kmt.equivalent("sw <- 2; sw = 2", "sw <- 2"))
    print("  sw <- 1; sw <- 2  ==  sw <- 2       :", kmt.equivalent("sw <- 1; sw <- 2", "sw <- 2"),
          "(rejected: the trace remembers both writes)")
    print("  dst = 1 + dst = 2  ==  true         :", kmt.equivalent("dst = 1 + dst = 2", "true"))


if __name__ == "__main__":
    main()
