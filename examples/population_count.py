#!/usr/bin/env python3
"""Population count over a product theory (Fig. 9, row 6 of the evaluation).

The paper's second-to-last microbenchmark combines naturals and booleans: a
counter ``y`` is bumped once per boolean flag that is set, so "y ended up
above a threshold" tells us how many of the flags were true.  The two phrasings

    y < 1; a = T; inc(y); (1 + b = T; inc(y)); (1 + c = T; inc(y)); y > 2
    y < 1; a = T; b = T; c = T; inc(y); inc(y); inc(y)

are equivalent: demanding the counter reach 3 forces every optional branch to
have fired.  This example checks that equivalence, explores some variations
(threshold 2 instead of 3, missing flags), and shows the derived counters in
the decision procedure.

Run with:  python examples/population_count.py
"""

from repro import KMT, BitVecTheory, IncNatTheory, ProductTheory


def main():
    theory = ProductTheory(
        IncNatTheory(variables=("y",)), BitVecTheory(variables=("a", "b", "c"))
    )
    kmt = KMT(theory)

    print("=== Fig. 9 row 6: population count ===")
    lhs = "y < 1; a = T; inc(y); (1 + b = T; inc(y)); (1 + c = T; inc(y)); y > 2"
    rhs = "y < 1; a = T; b = T; c = T; inc(y); inc(y); inc(y)"
    result = kmt.check_equivalent(lhs, rhs)
    print("  counting all three flags == requiring all three flags:", bool(result))
    print(f"  ({result.signatures_explored} guard signatures explored, "
          f"{result.cells_explored} language comparisons)")

    print()
    print("=== variations ===")
    # Threshold 2: now only a and *one of* b, c must be set — not the same program.
    threshold_two = "y < 1; a = T; inc(y); (1 + b = T; inc(y)); (1 + c = T; inc(y)); y > 1"
    print("  threshold 2 equals the all-three program:",
          kmt.equivalent(threshold_two, rhs), "(expected False)")
    # But it does contain the all-three behaviour.
    print("  all-three behaviour is included in threshold-2:",
          kmt.less_or_equal(rhs, threshold_two))

    # Dropping the counter guard makes the branches genuinely optional.
    unguarded = "a = T; inc(y); (1 + b = T; inc(y)); (1 + c = T; inc(y))"
    print("  without the final threshold the two sides differ:",
          not kmt.equivalent(unguarded, "a = T; b = T; c = T; inc(y); inc(y); inc(y)"))

    print()
    print("=== why the product theory matters ===")
    print("  cross-theory commutation  inc(y); a = T == a = T; inc(y):",
          kmt.equivalent("inc(y); a = T", "a = T; inc(y)"))
    counterexample = kmt.check_equivalent("a = T; inc(y); y > 1", "a = T; inc(y); y > 0")
    print("  a detected difference comes with a counterexample cell:")
    print("   ", counterexample.counterexample.describe())


if __name__ == "__main__":
    main()
