"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that the
package can be installed in editable mode on environments without the
``wheel`` package (offline machines where ``pip install -e .`` cannot build a
PEP 660 editable wheel): ``python setup.py develop`` or
``pip install -e . --no-build-isolation`` both work with it present.
"""

from setuptools import setup

setup()
